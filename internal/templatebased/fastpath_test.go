package templatebased

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/labels"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

// TestMatchEquivalentToParser is the contract the tiered router depends
// on: wherever Match succeeds, its Lines/Blocks/Fields must be exactly
// what the reference Parser produces for the same record, and wherever the
// reference parser would fail, Match must decline rather than guess.
func TestMatchEquivalentToParser(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 600, Seed: 41})
	opts := tokenize.Options{}
	p := Build(recs[:400], opts)
	c := Compile(recs[:400], opts)
	matched := 0
	for _, rec := range recs[400:] {
		m, err := c.Match(rec.Text)
		if err != nil {
			continue
		}
		matched++
		if m.Registrar != rec.Registrar {
			t.Fatalf("detected registrar %q, want %q", m.Registrar, rec.Registrar)
		}
		lines, blocks, perr := p.ParseBlocks(rec.Registrar, rec.Text)
		if perr != nil {
			t.Fatalf("Match succeeded but ParseBlocks failed on %s: %v", rec.Domain, perr)
		}
		fields, perr := p.ParseFields(rec.Registrar, lines, blocks)
		if perr != nil {
			t.Fatal(perr)
		}
		if len(m.Lines) != len(lines) {
			t.Fatalf("%s: %d lines, reference %d", rec.Domain, len(m.Lines), len(lines))
		}
		for i := range lines {
			if m.Lines[i].Raw != lines[i].Raw || m.Lines[i].Title != lines[i].Title ||
				m.Lines[i].Value != lines[i].Value || m.Lines[i].HasSep != lines[i].HasSep {
				t.Fatalf("%s line %d: %+v, reference %+v", rec.Domain, i, m.Lines[i], lines[i])
			}
			if m.Blocks[i] != blocks[i] {
				t.Fatalf("%s line %d: block %v, reference %v", rec.Domain, i, m.Blocks[i], blocks[i])
			}
			if m.Fields[i] != fields[i] {
				t.Fatalf("%s line %d: field %v, reference %v", rec.Domain, i, m.Fields[i], fields[i])
			}
		}
		if m.Confidence <= 0 || m.Confidence > 1 {
			t.Fatalf("%s: confidence %v out of range", rec.Domain, m.Confidence)
		}
	}
	if matched < 50 {
		t.Fatalf("only %d test records matched; fast path not exercising head traffic", matched)
	}
}

func TestMatchDeclinesUnknownRegistrar(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 100, Seed: 42})
	c := Compile(recs, tokenize.Options{})
	_, err := c.Match("Domain Name: example.com\nRegistrar: Never Seen Before LLC\n")
	if !errors.Is(err, ErrNoTemplate) {
		t.Errorf("got %v, want ErrNoTemplate", err)
	}
	if _, err := c.Match(""); !errors.Is(err, ErrNoTemplate) {
		t.Errorf("empty record: got %v, want ErrNoTemplate", err)
	}
}

func TestMatchDeclinesDriftedRecords(t *testing.T) {
	snapshot := synth.GenerateLabeled(synth.Config{N: 600, Seed: 43})
	c := Compile(snapshot, tokenize.Options{})
	drifted := synth.GenerateLabeled(synth.Config{N: 300, Seed: 44, DriftFraction: 1.0})
	fails, matched := 0, 0
	for _, rec := range drifted {
		if !c.HasTemplate(rec.Registrar) {
			continue
		}
		if _, err := c.Match(rec.Text); err != nil {
			if !errors.Is(err, ErrNoTemplate) && !errors.Is(err, ErrMismatch) {
				t.Fatalf("unexpected error: %v", err)
			}
			fails++
		} else {
			matched++
		}
	}
	if fails == 0 {
		t.Fatal("no drifted record was declined; fast path should fail crisply under drift")
	}
	_ = matched
}

func TestMatchMismatchOnMutatedTitle(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 200, Seed: 45})
	c := Compile(recs, tokenize.Options{})
	for _, rec := range recs {
		if _, err := c.Match(rec.Text); err != nil {
			continue
		}
		// Rename one titled line the template has never seen.
		mutated := strings.Replace(rec.Text, "Domain Name:", "Domain Designation:", 1)
		if mutated == rec.Text {
			continue
		}
		if _, err := c.Match(mutated); !errors.Is(err, ErrMismatch) {
			t.Fatalf("mutated record: got %v, want ErrMismatch", err)
		}
		return
	}
	t.Fatal("no matchable record with a Domain Name line found")
}

func TestCompiledAccessors(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 300, Seed: 46})
	c := Compile(recs, tokenize.Options{})
	if c.NumTemplates() == 0 {
		t.Fatal("no templates compiled")
	}
	regs := c.Registrars()
	if len(regs) != c.NumTemplates() {
		t.Fatalf("Registrars len %d != NumTemplates %d", len(regs), c.NumTemplates())
	}
	for i := 1; i < len(regs); i++ {
		if regs[i-1] >= regs[i] {
			t.Fatal("Registrars not sorted/deduped")
		}
	}
	for _, r := range regs {
		if !c.HasTemplate(r) {
			t.Fatalf("HasTemplate(%q) false for listed registrar", r)
		}
	}
	if c.HasTemplate("nobody at all") {
		t.Fatal("HasTemplate true for unknown registrar")
	}
}

// TestMatchAllocs keeps the fast path honest: a successful match should
// cost only the three result slices plus tokenizer-incidental slack — far
// under the tiered router's 40 allocs/op budget.
func TestMatchAllocs(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 200, Seed: 47})
	c := Compile(recs, tokenize.Options{})
	var text string
	for _, rec := range recs {
		if _, err := c.Match(rec.Text); err == nil {
			text = rec.Text
			break
		}
	}
	if text == "" {
		t.Fatal("no matchable record")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Match(text); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Errorf("Match allocates %.1f times per record; want <= 10", allocs)
	}
}

func TestDetectCountsRetainedLines(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 100, Seed: 48})
	c := Compile(recs, tokenize.Options{})
	for _, rec := range recs {
		reg, n := c.Detect(rec.Text)
		if want := len(tokenize.Tokenize(rec.Text, tokenize.Options{})); n != want {
			t.Fatalf("%s: Detect counted %d retained lines, Tokenize %d", rec.Domain, n, want)
		}
		if reg != "" && reg != rec.Registrar {
			t.Fatalf("%s: detected %q, want %q", rec.Domain, reg, rec.Registrar)
		}
	}
}

// Confidence should be diluted by context-carried bare lines, which an
// exact template cannot field-label — the signal the router thresholds on.
func TestMatchConfidenceDilutedByBareLines(t *testing.T) {
	text := "Registrar: Acme Registrations Inc.\n" +
		"Registrant Contact:\n" +
		"John Smith\n" +
		"123 Main Street\n"
	rec := &labels.LabeledRecord{
		Domain:    "example.com",
		TLD:       "com",
		Registrar: "Acme Registrations Inc.",
		Text:      text,
		Lines: []labels.LabeledLine{
			{Text: "Registrar: Acme Registrations Inc.", Block: labels.Registrar, Field: labels.FieldOther},
			{Text: "Registrant Contact:", Block: labels.Registrant, Field: labels.FieldOther},
			{Text: "John Smith", Block: labels.Registrant, Field: labels.FieldName},
			{Text: "123 Main Street", Block: labels.Registrant, Field: labels.FieldStreet},
		},
	}
	c := Compile([]*labels.LabeledRecord{rec}, tokenize.Options{})
	m, err := c.Match(text)
	if err != nil {
		t.Fatal(err)
	}
	// Registrar line and header are exact; the two bare registrant lines
	// are labeled only by header-context carry: 2 exact of 4 retained.
	if m.Confidence != 0.5 {
		t.Fatalf("confidence %v, want 0.5", m.Confidence)
	}
	// A record that is nothing but exact titled lines scores 1.
	allTitled := "Registrar: Acme Registrations Inc.\n"
	m, err = c.Match(allTitled)
	if err != nil {
		t.Fatal(err)
	}
	if m.Confidence != 1 {
		t.Fatalf("all-exact confidence %v, want 1", m.Confidence)
	}
}
