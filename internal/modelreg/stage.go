package modelreg

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/store"
)

// Stage is a version's position in the promotion pipeline. A stage is a
// pointer owned by the family, not a property of the version: at most
// one version per family occupies each stage, and moving a pointer
// never touches the artifacts it points at.
type Stage int

const (
	// StageNone: published, not staged.
	StageNone Stage = iota
	// StageCandidate: freshly trained, awaiting shadow evaluation.
	StageCandidate
	// StageShadow: under side-by-side evaluation against serving.
	StageShadow
	// StageServing: the version daemons resolve and serve.
	StageServing
)

func (s Stage) String() string {
	switch s {
	case StageNone:
		return "none"
	case StageCandidate:
		return "candidate"
	case StageShadow:
		return "shadow"
	case StageServing:
		return "serving"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// ParseStage parses a stage name.
func ParseStage(s string) (Stage, error) {
	switch s {
	case "candidate":
		return StageCandidate, nil
	case "shadow":
		return StageShadow, nil
	case "serving":
		return StageServing, nil
	case "none", "":
		return StageNone, nil
	}
	return StageNone, fmt.Errorf("modelreg: unknown stage %q", s)
}

// Stage and transition errors.
var (
	ErrNoSuchStage = errors.New("modelreg: stage not set")
	// ErrBadTransition reports a stage move the state machine forbids
	// (e.g. promoting a version that is not the current candidate).
	ErrBadTransition = errors.New("modelreg: illegal stage transition")
	// ErrNeverServed reports a rollback to a version the journal never
	// recorded as serving.
	ErrNeverServed = errors.New("modelreg: rollback target never served")
)

// Pointer is one decoded stage pointer: the version it names and the
// artifact CRC recorded at the time the pointer moved (a cheap
// split-brain check — Resolve cross-checks it against the manifest).
type Pointer struct {
	Version string
	CRC32C  uint32
}

func (r *Registry) pointerPath(family string, st Stage) string {
	return filepath.Join(r.familyDir(family), st.String()+ptrSuffix)
}

// readPointer decodes a stage pointer; ErrNoSuchStage when unset.
func (r *Registry) readPointer(family string, st Stage) (Pointer, error) {
	data, err := os.ReadFile(r.pointerPath(family, st))
	if os.IsNotExist(err) {
		return Pointer{}, fmt.Errorf("%w: %s/%s", ErrNoSuchStage, family, st)
	}
	if err != nil {
		return Pointer{}, fmt.Errorf("modelreg: read %s pointer: %w", st, err)
	}
	fields := strings.Fields(strings.TrimSpace(string(data)))
	if len(fields) != 2 {
		return Pointer{}, fmt.Errorf("modelreg: corrupt %s pointer %q", st, strings.TrimSpace(string(data)))
	}
	crc, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return Pointer{}, fmt.Errorf("modelreg: corrupt %s pointer crc %q", st, fields[1])
	}
	return Pointer{Version: fields[0], CRC32C: uint32(crc)}, nil
}

// writePointer moves a stage pointer — one atomic, fsynced rename.
func (r *Registry) writePointer(family string, st Stage, p Pointer) error {
	line := fmt.Sprintf("%s %08x\n", p.Version, p.CRC32C)
	return writeFileSync(r.pointerPath(family, st), []byte(line))
}

// clearPointer removes a stage pointer (absent is fine).
func (r *Registry) clearPointer(family string, st Stage) error {
	err := os.Remove(r.pointerPath(family, st))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return syncDir(r.familyDir(family))
}

// StageOf reports which stage currently names (family, version).
func (r *Registry) StageOf(family, version string) (Stage, error) {
	if err := checkFamily(family); err != nil {
		return StageNone, err
	}
	for _, st := range []Stage{StageServing, StageShadow, StageCandidate} {
		ptr, err := r.readPointer(family, st)
		if err == nil && ptr.Version == version {
			return st, nil
		}
	}
	return StageNone, nil
}

// --- journal ---

// JournalEntry is one line of a family's promotion history.
type JournalEntry struct {
	Unix    int64  `json:"unix"`
	Event   string `json:"event"` // candidate | shadow | serving | rollback
	Version string `json:"version"`
	CRC32C  uint32 `json:"crc32c"`
}

// appendJournal durably appends one history line.
func (r *Registry) appendJournal(family string, e JournalEntry) error {
	path := filepath.Join(r.familyDir(family), historyName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := fmt.Fprintf(f, "%d %s %s %08x\n", e.Unix, e.Event, e.Version, e.CRC32C)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// History returns a family's promotion journal, oldest first. Corrupt
// lines are skipped: the journal is an audit trail, and a torn final
// append must not make history unreadable.
func (r *Registry) History(family string) ([]JournalEntry, error) {
	if err := checkFamily(family); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(r.familyDir(family), historyName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("modelreg: history %s: %w", family, err)
	}
	defer f.Close()
	var out []JournalEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 4 {
			continue
		}
		ts, err1 := strconv.ParseInt(fields[0], 10, 64)
		crc, err2 := strconv.ParseUint(fields[3], 16, 32)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, JournalEntry{Unix: ts, Event: fields[1], Version: fields[2], CRC32C: uint32(crc)})
	}
	return out, sc.Err()
}

// --- the state machine ---

// SetCandidate stages a published version as the family's candidate —
// the entry point of the pipeline. Replacing an existing candidate is
// allowed (the newest candidate wins; the replaced version keeps its
// artifact, losing only the stage).
func (r *Registry) SetCandidate(family, version string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, err := r.Manifest(family, version)
	if err != nil {
		return err
	}
	if err := r.writePointer(family, StageCandidate, Pointer{version, m.Artifact.CRC32C}); err != nil {
		return fmt.Errorf("modelreg: candidate %s/%s: %w", family, version, err)
	}
	r.log.Info("staged candidate", "family", family, "version", version)
	return r.appendJournal(family, JournalEntry{r.now().Unix(), "candidate", version, m.Artifact.CRC32C})
}

// Promote advances a version one stage: candidate → shadow, or shadow →
// serving. The version must be the current occupant of its stage (you
// cannot promote around the pipeline), and it must Verify — a corrupted
// artifact or manifest refuses promotion with everything unchanged.
// Promotion to serving leaves the previous serving version fully intact
// in the registry; only the pointer moves, and the journal records the
// succession. Returns the stage the version now occupies.
func (r *Registry) Promote(family, version string) (Stage, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	var from, to Stage
	if ptr, err := r.readPointer(family, StageCandidate); err == nil && ptr.Version == version {
		from, to = StageCandidate, StageShadow
	} else if ptr, err := r.readPointer(family, StageShadow); err == nil && ptr.Version == version {
		from, to = StageShadow, StageServing
	} else {
		return StageNone, fmt.Errorf("%w: %s/%s is neither candidate nor shadow",
			ErrBadTransition, family, version)
	}

	// The verify gate: no stage advance for an artifact that cannot
	// prove it is the bytes its manifest describes.
	m, err := r.verifyLocked(family, version)
	if err != nil {
		return StageNone, fmt.Errorf("modelreg: promote %s/%s refused: %w", family, version, err)
	}
	if err := r.writePointer(family, to, Pointer{version, m.Artifact.CRC32C}); err != nil {
		return StageNone, fmt.Errorf("modelreg: promote %s/%s: %w", family, version, err)
	}
	if err := r.clearPointer(family, from); err != nil {
		return StageNone, fmt.Errorf("modelreg: promote %s/%s: %w", family, version, err)
	}
	r.met.promotions.Inc()
	r.log.Info("promoted", "family", family, "version", version, "to", to.String())
	return to, r.appendJournal(family, JournalEntry{r.now().Unix(), to.String(), version, m.Artifact.CRC32C})
}

// Rollback points serving back at a version the journal records as
// having served before. The target is re-verified first; the displaced
// serving version keeps its artifact (and can itself be rolled back to
// later — it served too).
func (r *Registry) Rollback(family, version string) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	hist, err := r.History(family)
	if err != nil {
		return err
	}
	served := false
	for _, e := range hist {
		if e.Version == version && (e.Event == "serving" || e.Event == "rollback") {
			served = true
			break
		}
	}
	if !served {
		return fmt.Errorf("%w: %s/%s", ErrNeverServed, family, version)
	}
	m, err := r.verifyLocked(family, version)
	if err != nil {
		return fmt.Errorf("modelreg: rollback %s/%s refused: %w", family, version, err)
	}
	if err := r.writePointer(family, StageServing, Pointer{version, m.Artifact.CRC32C}); err != nil {
		return fmt.Errorf("modelreg: rollback %s/%s: %w", family, version, err)
	}
	r.met.rollbacks.Inc()
	r.log.Info("rolled back", "family", family, "version", version)
	return r.appendJournal(family, JournalEntry{r.now().Unix(), "rollback", version, m.Artifact.CRC32C})
}

// --- resolution (the daemons' read path) ---

// Resolved is one stage lookup: the version, its artifact path, the
// verified-on-read header identity, and the manifest.
type Resolved struct {
	Family   string
	Version  string
	Stage    Stage
	Path     string
	Info     store.ModelInfo
	Manifest *Manifest
}

// VersionString is the identity stamp daemons put on every parsed
// record served by this model: "family/semver+crc32c". Deterministic
// across processes — a crawler stamping records and a daemon
// warm-starting from them agree without coordination.
func (res *Resolved) VersionString() string {
	return FormatVersionString(res.Family, res.Version, res.Info.CRC32C)
}

// FormatVersionString renders the canonical (family, version, crc)
// stamp.
func FormatVersionString(family, version string, crc uint32) string {
	return fmt.Sprintf("%s/%s+%08x", family, version, crc)
}

// Resolve looks up the version a stage pointer names. The pointer's
// recorded CRC must match both the manifest and the artifact header —
// a cheap torn-state check on every resolution, without the full
// payload re-hash Verify does.
func (r *Registry) Resolve(family string, st Stage) (*Resolved, error) {
	if err := checkFamily(family); err != nil {
		return nil, err
	}
	if st == StageNone {
		return nil, fmt.Errorf("modelreg: resolve %s: cannot resolve stage %q", family, st)
	}
	ptr, err := r.readPointer(family, st)
	if err != nil {
		return nil, err
	}
	m, err := r.Manifest(family, ptr.Version)
	if err != nil {
		return nil, err
	}
	path := r.ArtifactPath(family, ptr.Version)
	info, err := store.StatModel(path)
	if err != nil {
		return nil, fmt.Errorf("modelreg: resolve %s/%s: %w", family, ptr.Version, err)
	}
	if info.CRC32C != ptr.CRC32C || m.Artifact.CRC32C != ptr.CRC32C {
		return nil, fmt.Errorf("modelreg: resolve %s/%s: pointer crc %08x, manifest %08x, artifact %08x",
			family, ptr.Version, ptr.CRC32C, m.Artifact.CRC32C, info.CRC32C)
	}
	r.met.resolves.Inc()
	return &Resolved{
		Family: family, Version: ptr.Version, Stage: st,
		Path: path, Info: info, Manifest: m,
	}, nil
}

// ResolveServing resolves the family's serving pointer — what a daemon
// loads at boot and on SIGHUP.
func (r *Registry) ResolveServing(family string) (*Resolved, error) {
	return r.Resolve(family, StageServing)
}
