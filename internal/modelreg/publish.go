package modelreg

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/store"
)

// ErrVersionExists reports a publish naming a version already present —
// versions are immutable, re-publishing is allocation of a new one.
var ErrVersionExists = errors.New("modelreg: version already published")

// PublishRequest describes one artifact entering the registry.
type PublishRequest struct {
	// Family receives the version; created on first publish.
	Family string
	// Version is the explicit semver to allocate; "" bumps the minor of
	// the family's newest version (1.0.0 for an empty family).
	Version string
	// Parent is the lineage pointer ("" for a root). Must name an
	// existing version when set.
	Parent string
	// Artifact holds the WMDL bytes; when nil, ArtifactPath is read
	// instead. The bytes are CRC-verified before anything is written.
	Artifact     []byte
	ArtifactPath string
	// Provenance is recorded verbatim in the manifest.
	Provenance Provenance
}

// Publish verifies the artifact end to end (magic, format version,
// streamed payload CRC32C) and writes it into the registry as an
// immutable version: artifact first, manifest second, each atomic and
// fsynced, version directory fsynced last — a crash at any point leaves
// either a complete version or an unreferenced partial directory that
// Verify reports and GC sweeps; never a version that resolves but does
// not verify. The new version carries no stage.
func (r *Registry) Publish(req PublishRequest) (*Manifest, error) {
	if err := checkFamily(req.Family); err != nil {
		return nil, err
	}
	data := req.Artifact
	if data == nil {
		if req.ArtifactPath == "" {
			return nil, fmt.Errorf("modelreg: publish %s: no artifact bytes or path", req.Family)
		}
		var err error
		data, err = os.ReadFile(req.ArtifactPath)
		if err != nil {
			return nil, fmt.Errorf("modelreg: publish %s: %w", req.Family, err)
		}
	}
	// Full integrity check before the registry accepts custody: a torn
	// or tampered source artifact must not become a published version.
	info, err := store.VerifyModelBytes(data)
	if err != nil {
		return nil, fmt.Errorf("modelreg: publish %s: artifact: %w", req.Family, err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	version := req.Version
	if version == "" {
		version, err = r.nextVersionLocked(req.Family)
		if err != nil {
			return nil, err
		}
	} else if _, err := ParseVersion(version); err != nil {
		return nil, err
	}
	if req.Parent != "" {
		if _, err := os.Stat(r.ManifestPath(req.Family, req.Parent)); err != nil {
			return nil, fmt.Errorf("modelreg: publish %s/%s: parent %s not in registry",
				req.Family, version, req.Parent)
		}
	}

	vdir := r.versionDir(req.Family, version)
	if _, err := os.Stat(vdir); err == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrVersionExists, req.Family, version)
	}
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return nil, fmt.Errorf("modelreg: publish %s/%s: %w", req.Family, version, err)
	}

	m := &Manifest{
		Family:      req.Family,
		Version:     version,
		Parent:      req.Parent,
		CreatedUnix: r.now().Unix(),
		Artifact: ArtifactInfo{
			FormatVersion: info.FormatVersion,
			BlockFeatures: info.BlockFeatures,
			FieldFeatures: info.FieldFeatures,
			SizeBytes:     uint64(len(data)),
			CRC32C:        info.CRC32C,
		},
		Provenance: req.Provenance,
	}
	manifestBytes, err := m.encode()
	if err != nil {
		return nil, fmt.Errorf("modelreg: publish %s/%s: %w", req.Family, version, err)
	}
	if err := writeFileSync(r.ArtifactPath(req.Family, version), data); err != nil {
		return nil, fmt.Errorf("modelreg: publish %s/%s: artifact: %w", req.Family, version, err)
	}
	if err := writeFileSync(r.ManifestPath(req.Family, version), manifestBytes); err != nil {
		return nil, fmt.Errorf("modelreg: publish %s/%s: manifest: %w", req.Family, version, err)
	}
	if err := syncDir(vdir); err != nil {
		return nil, fmt.Errorf("modelreg: publish %s/%s: %w", req.Family, version, err)
	}
	r.met.publishes.Inc()
	r.log.Info("published", "family", req.Family, "version", version,
		"crc32c", fmt.Sprintf("%08x", info.CRC32C), "parent", req.Parent)
	return m, nil
}

// nextVersionLocked allocates the next version for a family: minor bump
// of the newest published version, 1.0.0 when the family is empty.
// Callers hold r.mu.
func (r *Registry) nextVersionLocked(family string) (string, error) {
	vers, err := r.Versions(family)
	if err != nil {
		return "", err
	}
	if len(vers) == 0 {
		return Version{1, 0, 0}.String(), nil
	}
	latest, err := ParseVersion(vers[len(vers)-1])
	if err != nil {
		return "", err
	}
	return latest.BumpMinor().String(), nil
}
