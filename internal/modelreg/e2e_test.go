package modelreg_test

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/modelreg"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/synth"
)

// TestPromotionUnderLoad is the registry's end-to-end acceptance test:
// a registry-backed manager serves parse traffic through the shared
// serving layer while an operator publishes a successor, walks it
// candidate → shadow → serving, and then rolls back. Under continuous
// load, every request must succeed and every parsed record must be
// stamped with exactly one known (family, version) identity; after the
// promote the displaced version must still verify on disk, and the
// rollback must bring it back live. Run under -race this also proves
// the pointer swap, journal append, and cache invalidation are clean.
func TestPromotionUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end load test")
	}

	// Two models: v1 trained on a slice, v2 retrained on more data.
	recs := synth.GenerateLabeled(synth.Config{N: 160, Seed: 41})
	pA, _, err := core.Train(recs[:40], core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pB, _, err := core.Retrain(pA, recs[:120], core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	artA := filepath.Join(scratch, "a.wmdl")
	artB := filepath.Join(scratch, "b.wmdl")
	if err := store.SaveModel(pA, artA); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveModel(pB, artB); err != nil {
		t.Fatal(err)
	}

	reg, err := modelreg.Open(t.TempDir(), modelreg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const fam = "default"
	m1, err := reg.Publish(modelreg.PublishRequest{Family: fam, ArtifactPath: artA})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SetCandidate(fam, m1.Version); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := reg.Promote(fam, m1.Version); err != nil {
			t.Fatal(err)
		}
	}

	mgr, err := lifecycle.NewFromRegistry(reg, fam, lifecycle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := serve.New(mgr.Current().Parser, serve.Options{Workers: 4, CacheCapacity: 256})
	defer ps.Close()
	mgr.Attach(ps)

	v1 := mgr.Current().Version
	if !strings.HasPrefix(v1, fam+"/"+m1.Version+"+") {
		t.Fatalf("serving identity %q does not carry %s/%s", v1, fam, m1.Version)
	}

	// Load: workers hammer the serving layer with rotating texts for the
	// whole promotion story. Every response is counted by the version it
	// claims to have been parsed by; any error or unknown stamp fails.
	texts := make([]string, 0, len(recs))
	for _, r := range recs {
		texts = append(texts, r.Text)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		byStamp  = map[string]int{}
		failures []string
	)
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ctx.Err() == nil; i += workers {
				rec, err := ps.ParseWait(ctx, texts[i%len(texts)])
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				switch {
				case err != nil:
					failures = append(failures, err.Error())
				case rec == nil:
					failures = append(failures, "nil record")
				default:
					byStamp[rec.ModelVersion]++
				}
				mu.Unlock()
			}
		}(w)
	}
	settle := func() { time.Sleep(20 * time.Millisecond) }
	settle()

	// Publish the successor and walk it through the state machine while
	// traffic flows; the daemon converges via ReloadServing after the
	// serving arrow, exactly as the SIGHUP / admin path does.
	m2, err := reg.Publish(modelreg.PublishRequest{
		Family: fam, Parent: m1.Version, ArtifactPath: artB,
		Provenance: modelreg.Provenance{Trainer: "e2e", CorpusPath: "/data/e2e.labeled"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SetCandidate(fam, m2.Version); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Promote(fam, m2.Version); err != nil { // -> shadow
		t.Fatal(err)
	}
	if _, changed, err := mgr.ReloadServing(); err != nil || changed {
		t.Fatalf("shadow promote must not move serving: changed=%v err=%v", changed, err)
	}
	if _, err := reg.Promote(fam, m2.Version); err != nil { // -> serving
		t.Fatal(err)
	}
	snap, changed, err := mgr.ReloadServing()
	if err != nil || !changed {
		t.Fatalf("serving promote did not swap: changed=%v err=%v", changed, err)
	}
	v2 := snap.Version
	if !strings.HasPrefix(v2, fam+"/"+m2.Version+"+") {
		t.Fatalf("post-promote identity %q", v2)
	}
	settle()

	// Acceptance: the displaced serving version is still on disk and
	// passes a full verification while its successor serves.
	if _, err := reg.Verify(fam, m1.Version); err != nil {
		t.Fatalf("old serving version corrupted by promote: %v", err)
	}

	// Roll back under the same load; the daemon converges again.
	if err := reg.Rollback(fam, m1.Version); err != nil {
		t.Fatal(err)
	}
	snap, changed, err = mgr.ReloadServing()
	if err != nil || !changed {
		t.Fatalf("rollback did not swap: changed=%v err=%v", changed, err)
	}
	if snap.Version != v1 {
		t.Fatalf("rollback landed on %q, want %q", snap.Version, v1)
	}
	settle()
	cancel()
	wg.Wait()

	// Zero failed requests, and every response attributable to exactly
	// one of the two published identities.
	if len(failures) > 0 {
		t.Fatalf("%d failed requests under promotion load; first: %s", len(failures), failures[0])
	}
	total := 0
	for stamp, n := range byStamp {
		if stamp != v1 && stamp != v2 {
			t.Fatalf("response stamped with unknown identity %q (%d records)", stamp, n)
		}
		total += n
	}
	if total == 0 || byStamp[v1] == 0 {
		t.Fatalf("load produced no attributable traffic: %v", byStamp)
	}
	t.Logf("served %d records under promotion: %v", total, byStamp)

	// The journal tells the whole story in order.
	hist, err := reg.History(fam)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	for _, e := range hist {
		events = append(events, e.Event+":"+e.Version)
	}
	want := []string{
		"candidate:1.0.0", "shadow:1.0.0", "serving:1.0.0",
		"candidate:1.1.0", "shadow:1.1.0", "serving:1.1.0",
		"rollback:1.0.0",
	}
	if strings.Join(events, " ") != strings.Join(want, " ") {
		t.Fatalf("journal = %v, want %v", events, want)
	}
}
