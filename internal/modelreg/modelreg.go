// Package modelreg is the versioned on-disk model registry: every WMDL
// the pipeline ever trains gets a durable identity — a family, a semver,
// a checksummed manifest recording where it came from and how it scored
// — and promotion becomes an auditable state-machine move instead of a
// file overwrite.
//
// Before this package the retrain loop (internal/lifecycle) promoted in
// place: the candidate artifact was written over the serving WMDL, and
// the previous model, its training provenance, and any chance of
// rollback were gone. The registry borrows the artifact discipline of
// package systems (immutable content-addressed artifacts, an
// inspect/verify CLI) and schema registries (immutable IDs, semver
// families, per-environment mutability): artifacts are immutable once
// published, only the stage pointers move.
//
// On-disk layout (one directory per family):
//
//	<root>/<family>/versions/<semver>/model.wmdl     immutable artifact
//	<root>/<family>/versions/<semver>/manifest.json  checksummed manifest
//	<root>/<family>/candidate.ptr                    stage pointers: one
//	<root>/<family>/shadow.ptr                       line, "version crc",
//	<root>/<family>/serving.ptr                      moved by O(1) renames
//	<root>/<family>/history.log                      append-only journal
//
// The promotion state machine:
//
//	publish ──▶ candidate ──▶ shadow ──▶ serving
//	                                        │
//	              rollback ◀────────────────┘ (to any prior serving
//	                                           version, journal-checked)
//
// Every arrow into shadow or serving runs Verify first — a corrupted
// artifact or manifest refuses to promote, with the old serving version
// untouched. Families are independent: `default/` serves the general
// model while `tld-com/` or `registrar-godaddy/` hold specialized
// lineages served side by side (ROADMAP items 1 and 4).
//
// All Registry methods are safe for concurrent use within one process;
// cross-process writers should coordinate externally (the daemons only
// read, the retrain loop and the CLI write).
package modelreg

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Filenames inside a family directory. Stage pointers are files so a
// stage move is a single rename — atomic on POSIX, O(1) regardless of
// artifact size.
const (
	versionsDir  = "versions"
	artifactName = "model.wmdl"
	manifestName = "manifest.json"
	historyName  = "history.log"
	ptrSuffix    = ".ptr"
)

// familyRe constrains family names to path-safe slugs: "default",
// "tld-com", "registrar-godaddy".
var familyRe = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// DefaultFamily is the family the daemons serve when none is named.
const DefaultFamily = "default"

// Options configures a Registry. The zero value works: private metrics,
// discarded logs, wall-clock time.
type Options struct {
	// Metrics receives modelreg.* counters and gauges; nil means a
	// private registry.
	Metrics *obs.Registry
	// Log receives registry events (publishes, promotions, GC); nil
	// discards them.
	Log *obs.Logger
	// Now is the clock manifests and journal entries are stamped with;
	// nil means time.Now. A test seam — Publish output becomes
	// deterministic with a fixed clock.
	Now func() time.Time
}

type metrics struct {
	publishes   *obs.Counter
	promotions  *obs.Counter
	rollbacks   *obs.Counter
	verifyFails *obs.Counter
	gcRemoved   *obs.Counter
	resolves    *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		publishes:   reg.Counter("modelreg.publishes"),
		promotions:  reg.Counter("modelreg.promotions"),
		rollbacks:   reg.Counter("modelreg.rollbacks"),
		verifyFails: reg.Counter("modelreg.verify.failures"),
		gcRemoved:   reg.Counter("modelreg.gc.removed"),
		resolves:    reg.Counter("modelreg.resolves"),
	}
}

// Registry is a handle on one registry root directory.
type Registry struct {
	root string
	log  *obs.Logger
	now  func() time.Time
	met  metrics

	// mu serializes mutations (publish, stage moves, GC) so two
	// in-process writers cannot interleave a read-modify-write of the
	// same pointer or version allocation.
	mu sync.Mutex
}

// Open opens (creating if needed) the registry rooted at dir.
func Open(dir string, opts Options) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelreg: open: %w", err)
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	if opts.Log == nil {
		opts.Log = obs.NewLogger("modelreg", io.Discard)
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	r := &Registry{
		root: dir,
		log:  opts.Log,
		now:  opts.Now,
		met:  newMetrics(opts.Metrics),
	}
	opts.Metrics.GaugeFunc("modelreg.families", func() float64 {
		fams, err := r.Families()
		if err != nil {
			return 0
		}
		return float64(len(fams))
	})
	opts.Metrics.GaugeFunc("modelreg.versions", func() float64 {
		n := 0
		fams, err := r.Families()
		if err != nil {
			return 0
		}
		for _, f := range fams {
			vs, err := r.Versions(f)
			if err == nil {
				n += len(vs)
			}
		}
		return float64(n)
	})
	return r, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

func (r *Registry) familyDir(family string) string {
	return filepath.Join(r.root, family)
}

func (r *Registry) versionDir(family, version string) string {
	return filepath.Join(r.root, family, versionsDir, version)
}

// ArtifactPath returns the immutable artifact path for (family,
// version); the file may not exist — callers resolve through stages or
// listings first.
func (r *Registry) ArtifactPath(family, version string) string {
	return filepath.Join(r.versionDir(family, version), artifactName)
}

// ManifestPath returns the manifest path for (family, version).
func (r *Registry) ManifestPath(family, version string) string {
	return filepath.Join(r.versionDir(family, version), manifestName)
}

func checkFamily(family string) error {
	if !familyRe.MatchString(family) {
		return fmt.Errorf("modelreg: bad family name %q (want a lowercase slug like %q or %q)",
			family, "default", "tld-com")
	}
	return nil
}

// Families lists the family directories, sorted.
func (r *Registry) Families() ([]string, error) {
	ents, err := os.ReadDir(r.root)
	if err != nil {
		return nil, fmt.Errorf("modelreg: families: %w", err)
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() && familyRe.MatchString(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Versions lists a family's published versions in ascending semver
// order. A family with no versions (or no directory yet) lists empty.
func (r *Registry) Versions(family string) ([]string, error) {
	if err := checkFamily(family); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(filepath.Join(r.familyDir(family), versionsDir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("modelreg: versions %s: %w", family, err)
	}
	vers := make([]Version, 0, len(ents))
	for _, e := range ents {
		v, perr := ParseVersion(e.Name())
		if perr != nil || !e.IsDir() {
			continue // foreign debris is invisible, not fatal
		}
		vers = append(vers, v)
	}
	sort.Slice(vers, func(i, j int) bool { return vers[i].Less(vers[j]) })
	out := make([]string, len(vers))
	for i, v := range vers {
		out[i] = v.String()
	}
	return out, nil
}

// --- listings (the `model list` / GET /admin/models view) ---

// VersionEntry is one version's row in a family listing.
type VersionEntry struct {
	Version string `json:"version"`
	// Stage is the stage pointer currently naming this version
	// ("candidate", "shadow", "serving", or "" for unstaged).
	Stage string `json:"stage,omitempty"`
	// Parent is the version this one was trained from.
	Parent string `json:"parent,omitempty"`
	// CRC32C is the artifact checksum, %08x.
	CRC32C string `json:"crc32c"`
	// CreatedUnix is the manifest's publish timestamp.
	CreatedUnix int64 `json:"created_unix"`
	// ShadowTokenAccuracy/ShadowRecordAccuracy are the candidate's
	// shadow-eval scores recorded at publish (0 when never evaluated).
	ShadowTokenAccuracy  float64 `json:"shadow_token_accuracy,omitempty"`
	ShadowRecordAccuracy float64 `json:"shadow_record_accuracy,omitempty"`
}

// FamilyListing is one family's stages and versions.
type FamilyListing struct {
	Family    string         `json:"family"`
	Serving   string         `json:"serving,omitempty"`
	Shadow    string         `json:"shadow,omitempty"`
	Candidate string         `json:"candidate,omitempty"`
	Versions  []VersionEntry `json:"versions"`
}

// ListFamily assembles the listing for one family.
func (r *Registry) ListFamily(family string) (*FamilyListing, error) {
	vers, err := r.Versions(family)
	if err != nil {
		return nil, err
	}
	l := &FamilyListing{Family: family}
	stages := map[string]string{}
	for _, st := range []Stage{StageCandidate, StageShadow, StageServing} {
		if ptr, err := r.readPointer(family, st); err == nil {
			stages[ptr.Version] = st.String()
			switch st {
			case StageCandidate:
				l.Candidate = ptr.Version
			case StageShadow:
				l.Shadow = ptr.Version
			case StageServing:
				l.Serving = ptr.Version
			}
		}
	}
	for _, v := range vers {
		e := VersionEntry{Version: v, Stage: stages[v]}
		if m, err := r.Manifest(family, v); err == nil {
			e.Parent = m.Parent
			e.CRC32C = fmt.Sprintf("%08x", m.Artifact.CRC32C)
			e.CreatedUnix = m.CreatedUnix
			e.ShadowTokenAccuracy = m.Provenance.ShadowTokenAccuracy
			e.ShadowRecordAccuracy = m.Provenance.ShadowRecordAccuracy
		}
		l.Versions = append(l.Versions, e)
	}
	return l, nil
}

// List assembles the listing for every family.
func (r *Registry) List() ([]*FamilyListing, error) {
	fams, err := r.Families()
	if err != nil {
		return nil, err
	}
	out := make([]*FamilyListing, 0, len(fams))
	for _, f := range fams {
		l, err := r.ListFamily(f)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// --- fsync plumbing shared by publish and stage moves ---

// writeFileSync writes data to path atomically: temp file in the same
// directory, fsync, rename, fsync the directory. A crash leaves either
// the old file or the new one, never a torn mix.
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return werr
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
