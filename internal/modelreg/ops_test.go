package modelreg

import (
	"os"
	"strings"
	"testing"
)

func TestVerifyAll(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")
	a, _ := artifacts(t)
	mustPublish(t, r, "tld-com", PublishRequest{Artifact: a})

	results, err := r.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		if !res.OK {
			t.Fatalf("%s/%s failed: %s", res.Family, res.Version, res.Error)
		}
	}

	// Corrupt one artifact: exactly that row flips.
	data, err := os.ReadFile(r.ArtifactPath("tld-com", "1.0.0"))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(r.ArtifactPath("tld-com", "1.0.0"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	results, err = r.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, res := range results {
		if !res.OK {
			bad++
			if res.Family != "tld-com" {
				t.Fatalf("wrong row failed: %+v", res)
			}
		}
	}
	if bad != 1 {
		t.Fatalf("bad rows = %d", bad)
	}
}

func TestVerifyCatchesManifestSwap(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")

	// Swap 1.1.0's manifest in for 1.0.0's: self-checksum still passes
	// (the file is internally consistent) but it names the wrong version.
	data, err := os.ReadFile(r.ManifestPath("default", "1.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(r.ManifestPath("default", "1.0.0"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Verify("default", "1.0.0"); err == nil {
		t.Fatal("swapped manifest verified")
	}
}

func TestVerifyCatchesArtifactSwap(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")

	// Replace 1.0.0's artifact with 1.1.0's: the artifact itself is a
	// valid WMDL, but its CRC no longer matches 1.0.0's manifest.
	data, err := os.ReadFile(r.ArtifactPath("default", "1.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(r.ArtifactPath("default", "1.0.0"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Verify("default", "1.0.0"); err == nil {
		t.Fatal("swapped artifact verified")
	}
}

func TestDiff(t *testing.T) {
	a, b := artifacts(t)
	r := testRegistry(t)
	mustPublish(t, r, "default", PublishRequest{
		Artifact:   a,
		Provenance: Provenance{ShadowTokenAccuracy: 0.90, ShadowRecordAccuracy: 0.70, Trainer: "seed"},
	})
	mustPublish(t, r, "default", PublishRequest{
		Artifact: b, Parent: "1.0.0",
		Provenance: Provenance{ShadowTokenAccuracy: 0.95, ShadowRecordAccuracy: 0.80, Trainer: "retrain"},
	})

	d, err := r.Diff("default", "1.0.0", "1.1.0")
	if err != nil {
		t.Fatal(err)
	}
	if d.SameArtifact {
		t.Fatal("distinct artifacts reported identical")
	}
	if !d.Lineal {
		t.Fatal("parent-linked versions not reported lineal")
	}
	if got := d.DeltaTokenAccuracy; got < 0.049 || got > 0.051 {
		t.Fatalf("delta token = %v", got)
	}
	out := d.Render()
	for _, want := range []string{"1.0.0 -> 1.1.0", "crc32c", "accuracy delta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// Same artifact published twice diffs as identical.
	mustPublish(t, r, "default", PublishRequest{Artifact: b, Version: "1.1.1"})
	d2, err := r.Diff("default", "1.1.0", "1.1.1")
	if err != nil {
		t.Fatal(err)
	}
	if !d2.SameArtifact {
		t.Fatal("identical artifacts reported different")
	}
}

func TestGC(t *testing.T) {
	a, b := artifacts(t)
	r := testRegistry(t)
	// Five versions; 1.0.0 walks to serving, rest unstaged.
	mustPublish(t, r, "default", PublishRequest{Artifact: a})
	for i := 0; i < 4; i++ {
		mustPublish(t, r, "default", PublishRequest{Artifact: b})
	}
	promoteToServing(t, r, "default", "1.0.0")

	removed, err := r.GC("default", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Newest two (1.3.0, 1.4.0) kept by policy, 1.0.0 kept by stage;
	// 1.1.0 and 1.2.0 go.
	if len(removed) != 2 || removed[0] != "1.1.0" || removed[1] != "1.2.0" {
		t.Fatalf("removed = %v", removed)
	}
	vers, err := r.Versions("default")
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 3 {
		t.Fatalf("surviving versions = %v", vers)
	}
	// Serving still resolves after GC.
	if _, err := r.ResolveServing("default"); err != nil {
		t.Fatal(err)
	}

	// GCAll with keep=0 removes everything unstaged.
	all, err := r.GCAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all["default"]) != 2 {
		t.Fatalf("GCAll removed = %v", all)
	}
	vers, _ = r.Versions("default")
	if len(vers) != 1 || vers[0] != "1.0.0" {
		t.Fatalf("after GCAll versions = %v", vers)
	}
}
