package modelreg

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/store"
)

// Verify checks one version end to end: the manifest's self-checksum,
// the artifact's full streamed payload CRC32C, and the cross-binding
// between the two (format version, feature dims, size, checksum, and
// that the manifest really names this family and version). It is the
// gate every promotion and rollback runs behind.
func (r *Registry) Verify(family, version string) (*Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.verifyLocked(family, version)
}

func (r *Registry) verifyLocked(family, version string) (*Manifest, error) {
	m, err := r.verifyInner(family, version)
	if err != nil {
		r.met.verifyFails.Inc()
		r.log.Info("verify failed", "family", family, "version", version, "err", err.Error())
	}
	return m, err
}

func (r *Registry) verifyInner(family, version string) (*Manifest, error) {
	if err := checkFamily(family); err != nil {
		return nil, err
	}
	m, err := r.Manifest(family, version) // self-checksum checked inside
	if err != nil {
		return nil, err
	}
	if m.Family != family || m.Version != version {
		return nil, fmt.Errorf("modelreg: verify %s/%s: manifest claims to be %s/%s",
			family, version, m.Family, m.Version)
	}
	path := r.ArtifactPath(family, version)
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("modelreg: verify %s/%s: %w", family, version, err)
	}
	if uint64(st.Size()) != m.Artifact.SizeBytes {
		return nil, fmt.Errorf("modelreg: verify %s/%s: artifact is %d bytes, manifest says %d",
			family, version, st.Size(), m.Artifact.SizeBytes)
	}
	info, err := store.VerifyModel(path) // full payload re-hash
	if err != nil {
		return nil, fmt.Errorf("modelreg: verify %s/%s: %w", family, version, err)
	}
	if info.CRC32C != m.Artifact.CRC32C ||
		info.FormatVersion != m.Artifact.FormatVersion ||
		info.BlockFeatures != m.Artifact.BlockFeatures ||
		info.FieldFeatures != m.Artifact.FieldFeatures {
		return nil, fmt.Errorf("modelreg: verify %s/%s: artifact %s does not match manifest (crc %08x block=%d field=%d)",
			family, version, info.String(), m.Artifact.CRC32C, m.Artifact.BlockFeatures, m.Artifact.FieldFeatures)
	}
	return m, nil
}

// VerifyResult is one version's line in a registry-wide verify sweep.
type VerifyResult struct {
	Family  string `json:"family"`
	Version string `json:"version"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
}

// VerifyAll verifies every version of every family and reports each
// outcome; it only errors when the registry itself is unreadable.
func (r *Registry) VerifyAll() ([]VerifyResult, error) {
	fams, err := r.Families()
	if err != nil {
		return nil, err
	}
	var out []VerifyResult
	for _, f := range fams {
		vers, err := r.Versions(f)
		if err != nil {
			return nil, err
		}
		for _, v := range vers {
			res := VerifyResult{Family: f, Version: v, OK: true}
			if _, err := r.Verify(f, v); err != nil {
				res.OK = false
				res.Error = err.Error()
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// --- diff ---

// DiffReport compares two versions of one family — the "what actually
// changed between the model that worked and the one that doesn't"
// answer.
type DiffReport struct {
	Family string    `json:"family"`
	A, B   *Manifest `json:"-"`

	VersionA string `json:"version_a"`
	VersionB string `json:"version_b"`
	// SameArtifact is true when the two versions contain byte-identical
	// models (same CRC and size) — a re-publish, not a retrain.
	SameArtifact bool `json:"same_artifact"`
	// DimsChanged is true when feature dimensions differ — the models
	// are from different featurization regimes, not just different data.
	DimsChanged bool `json:"dims_changed"`
	// Lineal is true when B descends from A through parent pointers (or
	// vice versa when B is older).
	Lineal bool `json:"lineal"`
	// DeltaTokenAccuracy/DeltaRecordAccuracy are B's shadow scores minus
	// A's (zero when either side never recorded scores).
	DeltaTokenAccuracy  float64 `json:"delta_token_accuracy"`
	DeltaRecordAccuracy float64 `json:"delta_record_accuracy"`
}

// Diff loads, verifies nothing, and compares the manifests of two
// versions in one family.
func (r *Registry) Diff(family, verA, verB string) (*DiffReport, error) {
	a, err := r.Manifest(family, verA)
	if err != nil {
		return nil, err
	}
	b, err := r.Manifest(family, verB)
	if err != nil {
		return nil, err
	}
	d := &DiffReport{
		Family: family, A: a, B: b,
		VersionA:     verA,
		VersionB:     verB,
		SameArtifact: a.Artifact.CRC32C == b.Artifact.CRC32C && a.Artifact.SizeBytes == b.Artifact.SizeBytes,
		DimsChanged: a.Artifact.BlockFeatures != b.Artifact.BlockFeatures ||
			a.Artifact.FieldFeatures != b.Artifact.FieldFeatures,
	}
	d.Lineal = r.descends(family, verB, verA) || r.descends(family, verA, verB)
	if a.Provenance.ShadowTokenAccuracy != 0 && b.Provenance.ShadowTokenAccuracy != 0 {
		d.DeltaTokenAccuracy = b.Provenance.ShadowTokenAccuracy - a.Provenance.ShadowTokenAccuracy
		d.DeltaRecordAccuracy = b.Provenance.ShadowRecordAccuracy - a.Provenance.ShadowRecordAccuracy
	}
	return d, nil
}

// descends walks parent pointers from child looking for ancestor.
func (r *Registry) descends(family, child, ancestor string) bool {
	cur := child
	for i := 0; i < 1000 && cur != ""; i++ { // bound against parent cycles
		m, err := r.Manifest(family, cur)
		if err != nil {
			return false
		}
		if m.Parent == ancestor {
			return true
		}
		cur = m.Parent
	}
	return false
}

// Render formats the diff for terminals.
func (d *DiffReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s -> %s\n", d.Family, d.VersionA, d.VersionB)
	line := func(label, av, bv string) {
		marker := " "
		if av != bv {
			marker = "*"
		}
		fmt.Fprintf(&b, " %s %-16s %-24s %s\n", marker, label, av, bv)
	}
	line("crc32c", fmt.Sprintf("%08x", d.A.Artifact.CRC32C), fmt.Sprintf("%08x", d.B.Artifact.CRC32C))
	line("size", fmt.Sprintf("%d", d.A.Artifact.SizeBytes), fmt.Sprintf("%d", d.B.Artifact.SizeBytes))
	line("block feats", fmt.Sprintf("%d", d.A.Artifact.BlockFeatures), fmt.Sprintf("%d", d.B.Artifact.BlockFeatures))
	line("field feats", fmt.Sprintf("%d", d.A.Artifact.FieldFeatures), fmt.Sprintf("%d", d.B.Artifact.FieldFeatures))
	line("parent", d.A.Parent, d.B.Parent)
	line("trainer", d.A.Provenance.Trainer, d.B.Provenance.Trainer)
	line("corpus", d.A.Provenance.CorpusPath, d.B.Provenance.CorpusPath)
	line("seq range",
		fmt.Sprintf("%d..%d", d.A.Provenance.SeqFirst, d.A.Provenance.SeqLast),
		fmt.Sprintf("%d..%d", d.B.Provenance.SeqFirst, d.B.Provenance.SeqLast))
	line("shadow tok acc",
		fmt.Sprintf("%.4f", d.A.Provenance.ShadowTokenAccuracy),
		fmt.Sprintf("%.4f", d.B.Provenance.ShadowTokenAccuracy))
	line("shadow rec acc",
		fmt.Sprintf("%.4f", d.A.Provenance.ShadowRecordAccuracy),
		fmt.Sprintf("%.4f", d.B.Provenance.ShadowRecordAccuracy))
	switch {
	case d.SameArtifact:
		b.WriteString("   artifacts are byte-identical\n")
	case d.DimsChanged:
		b.WriteString("   feature dimensions differ: different featurization regimes\n")
	}
	if d.DeltaTokenAccuracy != 0 || d.DeltaRecordAccuracy != 0 {
		fmt.Fprintf(&b, "   accuracy delta: token %+.4f, record %+.4f\n",
			d.DeltaTokenAccuracy, d.DeltaRecordAccuracy)
	}
	return b.String()
}

// --- gc ---

// GC removes unstaged versions of a family beyond the newest keep,
// returning the versions removed. Staged versions (candidate, shadow,
// serving) are always protected regardless of age, so rollback targets
// currently in the pipeline can never be collected; journal-only
// history older than the keep window is fair game — the journal line
// remains, the artifact goes.
func (r *Registry) GC(family string, keep int) ([]string, error) {
	if keep < 0 {
		keep = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	vers, err := r.Versions(family)
	if err != nil {
		return nil, err
	}
	protected := map[string]bool{}
	for _, st := range []Stage{StageCandidate, StageShadow, StageServing} {
		if ptr, err := r.readPointer(family, st); err == nil {
			protected[ptr.Version] = true
		}
	}
	// Versions() is ascending; protect the newest keep.
	for i := len(vers) - keep; i < len(vers); i++ {
		if i >= 0 {
			protected[vers[i]] = true
		}
	}
	var removed []string
	for _, v := range vers {
		if protected[v] {
			continue
		}
		if err := os.RemoveAll(r.versionDir(family, v)); err != nil {
			return removed, fmt.Errorf("modelreg: gc %s/%s: %w", family, v, err)
		}
		removed = append(removed, v)
		r.met.gcRemoved.Inc()
		r.log.Info("gc removed", "family", family, "version", v)
	}
	if len(removed) > 0 {
		if err := syncDir(filepath.Join(r.familyDir(family), versionsDir)); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// GCAll runs GC over every family with one keep policy; returns
// family → removed versions (families with nothing removed are
// omitted).
func (r *Registry) GCAll(keep int) (map[string][]string, error) {
	fams, err := r.Families()
	if err != nil {
		return nil, err
	}
	out := map[string][]string{}
	for _, f := range fams {
		removed, err := r.GC(f, keep)
		if err != nil {
			return out, err
		}
		if len(removed) > 0 {
			out[f] = removed
		}
	}
	return out, nil
}
