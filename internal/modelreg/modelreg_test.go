package modelreg

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/synth"
)

// Shared fixtures: two distinct trained artifacts, built once per
// process (training dominates test time otherwise).
var (
	artOnce sync.Once
	artA    []byte // trained on the first slice
	artB    []byte // retrained on more data — different bytes, same dims
	artErr  error
)

func artifacts(t testing.TB) ([]byte, []byte) {
	t.Helper()
	artOnce.Do(func() {
		recs := synth.GenerateLabeled(synth.Config{N: 120, Seed: 7})
		pA, _, err := core.Train(recs[:40], core.DefaultConfig())
		if err != nil {
			artErr = err
			return
		}
		pB, _, err := core.Retrain(pA, recs[:100], core.DefaultConfig())
		if err != nil {
			artErr = err
			return
		}
		dir, err := os.MkdirTemp("", "modelreg-fixture-*")
		if err != nil {
			artErr = err
			return
		}
		defer os.RemoveAll(dir)
		for _, f := range []struct {
			p   *core.Parser
			dst *[]byte
		}{{pA, &artA}, {pB, &artB}} {
			path := filepath.Join(dir, "m.wmdl")
			if err := store.SaveModel(f.p, path); err != nil {
				artErr = err
				return
			}
			*f.dst, artErr = os.ReadFile(path)
			if artErr != nil {
				return
			}
		}
	})
	if artErr != nil {
		t.Fatal(artErr)
	}
	return artA, artB
}

func testRegistry(t testing.TB) *Registry {
	t.Helper()
	fixed := time.Unix(1754600000, 0)
	r, err := Open(t.TempDir(), Options{Now: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustPublish(t testing.TB, r *Registry, family string, req PublishRequest) *Manifest {
	t.Helper()
	req.Family = family
	m, err := r.Publish(req)
	if err != nil {
		t.Fatalf("publish %s: %v", family, err)
	}
	return m
}

func TestPublishAllocatesVersions(t *testing.T) {
	a, b := artifacts(t)
	r := testRegistry(t)

	m1 := mustPublish(t, r, "default", PublishRequest{Artifact: a})
	if m1.Version != "1.0.0" {
		t.Fatalf("first publish allocated %q, want 1.0.0", m1.Version)
	}
	m2 := mustPublish(t, r, "default", PublishRequest{Artifact: b, Parent: m1.Version})
	if m2.Version != "1.1.0" {
		t.Fatalf("second publish allocated %q, want 1.1.0", m2.Version)
	}
	if m2.Parent != "1.0.0" {
		t.Fatalf("parent = %q", m2.Parent)
	}

	vers, err := r.Versions("default")
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 2 || vers[0] != "1.0.0" || vers[1] != "1.1.0" {
		t.Fatalf("versions = %v", vers)
	}

	// The artifact on disk is the exact bytes published.
	got, err := os.ReadFile(r.ArtifactPath("default", "1.0.0"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(a) {
		t.Fatal("artifact bytes differ from published bytes")
	}
}

func TestPublishExplicitAndDuplicate(t *testing.T) {
	a, _ := artifacts(t)
	r := testRegistry(t)

	m := mustPublish(t, r, "tld-com", PublishRequest{Artifact: a, Version: "2.0.0"})
	if m.Version != "2.0.0" {
		t.Fatalf("version = %q", m.Version)
	}
	if _, err := r.Publish(PublishRequest{Family: "tld-com", Artifact: a, Version: "2.0.0"}); !errors.Is(err, ErrVersionExists) {
		t.Fatalf("duplicate publish err = %v, want ErrVersionExists", err)
	}
	// Auto-allocation continues from the explicit version.
	m2 := mustPublish(t, r, "tld-com", PublishRequest{Artifact: a})
	if m2.Version != "2.1.0" {
		t.Fatalf("next version = %q, want 2.1.0", m2.Version)
	}
}

func TestPublishRejects(t *testing.T) {
	a, _ := artifacts(t)
	r := testRegistry(t)

	if _, err := r.Publish(PublishRequest{Family: "Bad Family", Artifact: a}); err == nil {
		t.Fatal("bad family accepted")
	}
	if _, err := r.Publish(PublishRequest{Family: "default", Artifact: []byte("not a model")}); err == nil {
		t.Fatal("garbage artifact accepted")
	}
	corrupt := append([]byte(nil), a...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := r.Publish(PublishRequest{Family: "default", Artifact: corrupt}); err == nil {
		t.Fatal("corrupt artifact accepted")
	}
	if _, err := r.Publish(PublishRequest{Family: "default", Artifact: a, Parent: "9.9.9"}); err == nil {
		t.Fatal("missing parent accepted")
	}
	if _, err := r.Publish(PublishRequest{Family: "default", Artifact: a, Version: "1.0"}); err == nil {
		t.Fatal("malformed version accepted")
	}
	// Nothing should have been published by any of the rejects.
	if vers, _ := r.Versions("default"); len(vers) != 0 {
		t.Fatalf("rejected publishes left versions behind: %v", vers)
	}
}

func TestPublishFromPath(t *testing.T) {
	a, _ := artifacts(t)
	r := testRegistry(t)
	src := filepath.Join(t.TempDir(), "src.wmdl")
	if err := os.WriteFile(src, a, 0o644); err != nil {
		t.Fatal(err)
	}
	m := mustPublish(t, r, "default", PublishRequest{ArtifactPath: src})
	if m.Artifact.SizeBytes != uint64(len(a)) {
		t.Fatalf("size = %d, want %d", m.Artifact.SizeBytes, len(a))
	}
}

func TestManifestSealDetectsTamper(t *testing.T) {
	a, _ := artifacts(t)
	r := testRegistry(t)
	mustPublish(t, r, "default", PublishRequest{Artifact: a, Provenance: Provenance{Trainer: "test"}})

	if _, err := r.Manifest("default", "1.0.0"); err != nil {
		t.Fatalf("pristine manifest failed: %v", err)
	}
	path := r.ManifestPath("default", "1.0.0")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(strings.ReplaceAll(string(data), `"trainer": "test"`, `"trainer": "evil"`))
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Manifest("default", "1.0.0"); !errors.Is(err, ErrManifestChecksum) {
		t.Fatalf("tampered manifest err = %v, want ErrManifestChecksum", err)
	}
}

func TestListFamily(t *testing.T) {
	a, b := artifacts(t)
	r := testRegistry(t)
	mustPublish(t, r, "default", PublishRequest{Artifact: a, Provenance: Provenance{ShadowTokenAccuracy: 0.91}})
	mustPublish(t, r, "default", PublishRequest{Artifact: b, Parent: "1.0.0"})
	mustPublish(t, r, "tld-com", PublishRequest{Artifact: a})

	if err := r.SetCandidate("default", "1.1.0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote("default", "1.1.0"); err != nil { // -> shadow
		t.Fatal(err)
	}

	l, err := r.ListFamily("default")
	if err != nil {
		t.Fatal(err)
	}
	if l.Shadow != "1.1.0" || l.Serving != "" || l.Candidate != "" {
		t.Fatalf("stages = serving=%q shadow=%q candidate=%q", l.Serving, l.Shadow, l.Candidate)
	}
	if len(l.Versions) != 2 {
		t.Fatalf("versions = %d", len(l.Versions))
	}
	if l.Versions[0].ShadowTokenAccuracy != 0.91 {
		t.Fatalf("listing lost provenance: %+v", l.Versions[0])
	}
	if l.Versions[1].Stage != "shadow" {
		t.Fatalf("1.1.0 stage = %q", l.Versions[1].Stage)
	}

	all, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("families listed = %d", len(all))
	}

	fams, err := r.Families()
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 || fams[0] != "default" || fams[1] != "tld-com" {
		t.Fatalf("families = %v", fams)
	}
}

func TestParseVersion(t *testing.T) {
	good := map[string]Version{
		"1.0.0":    {1, 0, 0},
		"0.9.12":   {0, 9, 12},
		"10.20.30": {10, 20, 30},
	}
	for s, want := range good {
		v, err := ParseVersion(s)
		if err != nil || v != want {
			t.Fatalf("ParseVersion(%q) = %v, %v", s, v, err)
		}
		if v.String() != s {
			t.Fatalf("roundtrip %q -> %q", s, v.String())
		}
	}
	for _, s := range []string{"", "1.0", "1.0.0.0", "v1.0.0", "1.0.-1", "01.0.0", "1.00.0", "1.0.0-rc1"} {
		if _, err := ParseVersion(s); err == nil {
			t.Fatalf("ParseVersion(%q) accepted", s)
		}
	}
	if got := (Version{1, 2, 3}).BumpMinor(); got != (Version{1, 3, 0}) {
		t.Fatalf("BumpMinor = %v", got)
	}
	if got := (Version{1, 2, 3}).BumpPatch(); got != (Version{1, 2, 4}) {
		t.Fatalf("BumpPatch = %v", got)
	}
	if !(Version{1, 9, 9}).Less(Version{2, 0, 0}) || (Version{2, 0, 0}).Less(Version{1, 9, 9}) {
		t.Fatal("Less ordering broken")
	}
}
