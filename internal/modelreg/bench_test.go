package modelreg

import (
	"fmt"
	"testing"
)

func BenchmarkPublish(b *testing.B) {
	art, _ := artifacts(b)
	r := testRegistry(b)
	b.SetBytes(int64(len(art)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Publish(PublishRequest{Family: "default", Artifact: art}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveServing(b *testing.B) {
	art, _ := artifacts(b)
	r := testRegistry(b)
	if _, err := r.Publish(PublishRequest{Family: "default", Artifact: art}); err != nil {
		b.Fatal(err)
	}
	promoteToServing(b, r, "default", "1.0.0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.ResolveServing("default")
		if err != nil {
			b.Fatal(err)
		}
		if res.Version != "1.0.0" {
			b.Fatal("wrong version")
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	art, _ := artifacts(b)
	r := testRegistry(b)
	if _, err := r.Publish(PublishRequest{Family: "default", Artifact: art}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(art)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Verify("default", "1.0.0"); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink string

func BenchmarkVersionString(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = FormatVersionString("default", "1.2.3", uint32(i))
	}
	if len(benchSink) == 0 {
		b.Fatal(fmt.Errorf("empty"))
	}
}
