package modelreg

import (
	"errors"
	"os"
	"testing"
)

// publishTwo seeds a registry with 1.0.0 (artifact a) and 1.1.0
// (artifact b) in the given family.
func publishTwo(t testing.TB, r *Registry, family string) {
	t.Helper()
	a, b := artifacts(t)
	mustPublish(t, r, family, PublishRequest{Artifact: a})
	mustPublish(t, r, family, PublishRequest{Artifact: b, Parent: "1.0.0"})
}

// promoteToServing walks a version through the full pipeline.
func promoteToServing(t testing.TB, r *Registry, family, version string) {
	t.Helper()
	if err := r.SetCandidate(family, version); err != nil {
		t.Fatal(err)
	}
	if st, err := r.Promote(family, version); err != nil || st != StageShadow {
		t.Fatalf("promote to shadow: stage=%v err=%v", st, err)
	}
	if st, err := r.Promote(family, version); err != nil || st != StageServing {
		t.Fatalf("promote to serving: stage=%v err=%v", st, err)
	}
}

func TestPromotionPipeline(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")

	// Fresh publishes carry no stage.
	if st, err := r.StageOf("default", "1.0.0"); err != nil || st != StageNone {
		t.Fatalf("StageOf fresh = %v, %v", st, err)
	}
	// Nothing is serving yet.
	if _, err := r.ResolveServing("default"); !errors.Is(err, ErrNoSuchStage) {
		t.Fatalf("resolve empty serving = %v, want ErrNoSuchStage", err)
	}

	promoteToServing(t, r, "default", "1.0.0")

	res, err := r.ResolveServing("default")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != "1.0.0" || res.Stage != StageServing || res.Family != "default" {
		t.Fatalf("resolved %+v", res)
	}
	if res.Manifest.Artifact.CRC32C != res.Info.CRC32C {
		t.Fatal("manifest and header disagree on CRC")
	}
	want := FormatVersionString("default", "1.0.0", res.Info.CRC32C)
	if res.VersionString() != want {
		t.Fatalf("VersionString = %q, want %q", res.VersionString(), want)
	}

	// Candidate and shadow pointers were consumed by the walk.
	if st, _ := r.StageOf("default", "1.0.0"); st != StageServing {
		t.Fatalf("StageOf = %v", st)
	}
	if _, err := r.Resolve("default", StageCandidate); !errors.Is(err, ErrNoSuchStage) {
		t.Fatalf("candidate still set: %v", err)
	}
}

func TestPromoteSuccessionKeepsOldServing(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")
	promoteToServing(t, r, "default", "1.0.0")
	promoteToServing(t, r, "default", "1.1.0")

	res, err := r.ResolveServing("default")
	if err != nil || res.Version != "1.1.0" {
		t.Fatalf("serving = %+v, %v", res, err)
	}
	// The displaced version keeps its artifact and still verifies.
	if _, err := os.Stat(r.ArtifactPath("default", "1.0.0")); err != nil {
		t.Fatalf("old serving artifact gone: %v", err)
	}
	if _, err := r.Verify("default", "1.0.0"); err != nil {
		t.Fatalf("old serving no longer verifies: %v", err)
	}
}

func TestPromoteRejectsIllegalTransitions(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")

	// Unstaged version cannot promote.
	if _, err := r.Promote("default", "1.0.0"); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("promote unstaged = %v, want ErrBadTransition", err)
	}
	// SetCandidate requires a published version.
	if err := r.SetCandidate("default", "9.9.9"); err == nil {
		t.Fatal("candidate for unpublished version accepted")
	}
	// A version not at the named stage cannot promote past another.
	if err := r.SetCandidate("default", "1.0.0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote("default", "1.1.0"); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("promote non-candidate = %v, want ErrBadTransition", err)
	}
}

func TestRollback(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")
	promoteToServing(t, r, "default", "1.0.0")
	promoteToServing(t, r, "default", "1.1.0")

	// 1.0.0 served before: rollback allowed.
	if err := r.Rollback("default", "1.0.0"); err != nil {
		t.Fatal(err)
	}
	res, err := r.ResolveServing("default")
	if err != nil || res.Version != "1.0.0" {
		t.Fatalf("after rollback serving = %+v, %v", res, err)
	}
	// Roll forward again — 1.1.0 served too.
	if err := r.Rollback("default", "1.1.0"); err != nil {
		t.Fatal(err)
	}

	// A published-but-never-served version is not a rollback target.
	a, _ := artifacts(t)
	mustPublish(t, r, "default", PublishRequest{Artifact: a})
	if err := r.Rollback("default", "1.2.0"); !errors.Is(err, ErrNeverServed) {
		t.Fatalf("rollback to never-served = %v, want ErrNeverServed", err)
	}

	hist, err := r.History("default")
	if err != nil {
		t.Fatal(err)
	}
	// candidate, shadow, serving ×2 walks + 2 rollbacks = 8 entries.
	if len(hist) != 8 {
		t.Fatalf("history entries = %d: %+v", len(hist), hist)
	}
	last := hist[len(hist)-1]
	if last.Event != "rollback" || last.Version != "1.1.0" {
		t.Fatalf("last journal entry = %+v", last)
	}
}

func TestCorruptArtifactRefusesPromotion(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")
	promoteToServing(t, r, "default", "1.0.0")

	if err := r.SetCandidate("default", "1.1.0"); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the staged artifact.
	path := r.ArtifactPath("default", "1.1.0")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := r.Promote("default", "1.1.0"); err == nil {
		t.Fatal("corrupt artifact promoted")
	}
	// Serving is untouched and still resolves.
	res, err := r.ResolveServing("default")
	if err != nil || res.Version != "1.0.0" {
		t.Fatalf("serving after refused promotion = %+v, %v", res, err)
	}
}

func TestCorruptManifestRefusesPromotion(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")
	if err := r.SetCandidate("default", "1.1.0"); err != nil {
		t.Fatal(err)
	}
	path := r.ManifestPath("default", "1.1.0")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote("default", "1.1.0"); err == nil {
		t.Fatal("corrupt manifest promoted")
	}
}

func TestResolveCatchesPointerSkew(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")
	promoteToServing(t, r, "default", "1.0.0")

	// Hand-edit the serving pointer to a wrong CRC: Resolve must refuse
	// rather than serve a model that is not what the pointer promised.
	if err := r.writePointer("default", StageServing, Pointer{Version: "1.0.0", CRC32C: 0xdeadbeef}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ResolveServing("default"); err == nil {
		t.Fatal("skewed pointer resolved")
	}
}

func TestParseStage(t *testing.T) {
	for _, st := range []Stage{StageCandidate, StageShadow, StageServing, StageNone} {
		got, err := ParseStage(st.String())
		if err != nil || got != st {
			t.Fatalf("ParseStage(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := ParseStage("production"); err == nil {
		t.Fatal("unknown stage accepted")
	}
}

func TestHistorySkipsTornLines(t *testing.T) {
	r := testRegistry(t)
	publishTwo(t, r, "default")
	promoteToServing(t, r, "default", "1.0.0")

	f, err := os.OpenFile(r.familyDir("default")+"/"+historyName, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1754600 serv"); err != nil { // torn append
		t.Fatal(err)
	}
	f.Close()

	hist, err := r.History("default")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history = %d entries, want 3 (torn line skipped)", len(hist))
	}
}
