package modelreg

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// ErrManifestChecksum reports a manifest whose self-checksum does not
// match its content — the file was edited or damaged after publish.
var ErrManifestChecksum = errors.New("modelreg: manifest checksum mismatch")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ArtifactInfo pins the manifest to one exact artifact: the WMDL
// header's identity fields plus the byte size. Verify cross-checks all
// of it against the artifact file, so a manifest cannot quietly describe
// a different model than the one sitting next to it.
type ArtifactInfo struct {
	FormatVersion uint16 `json:"format_version"`
	BlockFeatures uint64 `json:"block_features"`
	FieldFeatures uint64 `json:"field_features"`
	SizeBytes     uint64 `json:"size_bytes"`
	CRC32C        uint32 `json:"crc32c"`
}

// Provenance records where a version came from and how it scored — the
// audit trail that makes "which data trained the model answering this
// request" answerable months later.
type Provenance struct {
	// CorpusPath is the record store (or corpus file) the training data
	// came from.
	CorpusPath string `json:"corpus_path,omitempty"`
	// SeqFirst/SeqLast bound the store sequence range that fed training
	// (both zero when the source was not a store).
	SeqFirst uint64 `json:"seq_first,omitempty"`
	SeqLast  uint64 `json:"seq_last,omitempty"`
	// TrainRecords/HoldoutRecords count the labeled records used.
	TrainRecords   int `json:"train_records,omitempty"`
	HoldoutRecords int `json:"holdout_records,omitempty"`
	// Shadow*Accuracy are the candidate's held-out scores (token = 1 -
	// block line error, record = 1 - block doc error); Live*Accuracy are
	// the then-serving model's scores on the same holdout, so the
	// promotion margin is reconstructible from the manifest alone.
	ShadowTokenAccuracy  float64 `json:"shadow_token_accuracy,omitempty"`
	ShadowRecordAccuracy float64 `json:"shadow_record_accuracy,omitempty"`
	LiveTokenAccuracy    float64 `json:"live_token_accuracy,omitempty"`
	LiveRecordAccuracy   float64 `json:"live_record_accuracy,omitempty"`
	// Trainer names the code path that produced the artifact
	// ("lifecycle.Retrain", "whoisparse model publish", ...).
	Trainer string `json:"trainer,omitempty"`
	// Note is free-form operator context.
	Note string `json:"note,omitempty"`
}

// Manifest is the checksummed JSON document published next to every
// artifact. Immutable after publish, like the artifact itself.
type Manifest struct {
	Family  string `json:"family"`
	Version string `json:"version"`
	// Parent is the version this one was trained from ("" for roots).
	Parent string `json:"parent,omitempty"`
	// CreatedUnix is the publish time (seconds).
	CreatedUnix int64        `json:"created_unix"`
	Artifact    ArtifactInfo `json:"artifact"`
	Provenance  Provenance   `json:"provenance"`
	// SelfCRC32C is the CRC32C of this manifest's canonical JSON with
	// this field set to zero — the tamper seal Verify checks.
	SelfCRC32C uint32 `json:"self_crc32c"`
}

// seal computes the manifest's self-checksum: CRC32C over the canonical
// (struct-ordered, indented) JSON encoding with SelfCRC32C zeroed.
func (m *Manifest) seal() (uint32, error) {
	cp := *m
	cp.SelfCRC32C = 0
	data, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return 0, err
	}
	return crc32.Checksum(data, castagnoli), nil
}

// encode seals and serializes the manifest.
func (m *Manifest) encode() ([]byte, error) {
	crc, err := m.seal()
	if err != nil {
		return nil, err
	}
	m.SelfCRC32C = crc
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeManifest parses and checksum-verifies a manifest.
func decodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("modelreg: manifest: %w", err)
	}
	want, err := m.seal()
	if err != nil {
		return nil, fmt.Errorf("modelreg: manifest: %w", err)
	}
	if want != m.SelfCRC32C {
		return nil, fmt.Errorf("%w: recorded %08x, content %08x",
			ErrManifestChecksum, m.SelfCRC32C, want)
	}
	return &m, nil
}

// Manifest loads and checksum-verifies the manifest for (family,
// version).
func (r *Registry) Manifest(family, version string) (*Manifest, error) {
	data, err := os.ReadFile(r.ManifestPath(family, version))
	if err != nil {
		return nil, fmt.Errorf("modelreg: manifest %s/%s: %w", family, version, err)
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", family, version, err)
	}
	return m, nil
}
