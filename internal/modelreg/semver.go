package modelreg

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is a semantic version within a model family. Majors mark
// incompatible retraining regimes (new feature templates, new label
// set), minors mark retrains on new data, patches mark re-publishes of
// the same training run (fixed provenance, re-verified artifact). The
// registry only enforces the ordering; the meaning is convention.
type Version struct {
	Major, Minor, Patch int
}

// ParseVersion parses "MAJOR.MINOR.PATCH". No prerelease or build
// suffixes: registry versions name immutable artifacts, not release
// trains.
func ParseVersion(s string) (Version, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return Version{}, fmt.Errorf("modelreg: bad version %q (want MAJOR.MINOR.PATCH)", s)
	}
	var nums [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || (len(p) > 1 && p[0] == '0') {
			return Version{}, fmt.Errorf("modelreg: bad version %q (component %q)", s, p)
		}
		nums[i] = n
	}
	return Version{nums[0], nums[1], nums[2]}, nil
}

func (v Version) String() string {
	return fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Patch)
}

// Less orders versions semver-wise.
func (v Version) Less(o Version) bool {
	if v.Major != o.Major {
		return v.Major < o.Major
	}
	if v.Minor != o.Minor {
		return v.Minor < o.Minor
	}
	return v.Patch < o.Patch
}

// BumpMinor returns the next minor version (patch resets) — the default
// allocation for a retrain on new data.
func (v Version) BumpMinor() Version {
	return Version{v.Major, v.Minor + 1, 0}
}

// BumpPatch returns the next patch version.
func (v Version) BumpPatch() Version {
	return Version{v.Major, v.Minor, v.Patch + 1}
}
