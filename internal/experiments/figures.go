package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/labels"
	"repro/internal/rulebased"
	"repro/internal/tokenize"
)

// SweepResult holds the Figure 2/3 cross-validation curves for both
// parser types.
type SweepResult struct {
	Statistical []eval.SweepPoint
	RuleBased   []eval.SweepPoint
}

// Figures23 runs the §5.1 protocol: five-fold cross-validation over the
// labeled com corpus, sweeping the training-set size, for the statistical
// and the rolled-back rule-based parser.
func Figures23(o Options) (SweepResult, string, error) {
	o = o.Defaults()
	recs := Corpus(o)

	statFactory := func(train []*labels.LabeledRecord) (eval.BlockParser, error) {
		p, _, err := TrainParser(train, o)
		return p, err
	}
	ruleFactory := func(train []*labels.LabeledRecord) (eval.BlockParser, error) {
		return rulebased.Build(train, tokenize.Options{}), nil
	}

	var res SweepResult
	var err error
	res.Statistical, err = eval.CrossValidate(recs, o.TrainSizes, o.Folds, o.Seed, statFactory)
	if err != nil {
		return res, "", fmt.Errorf("experiments: statistical sweep: %w", err)
	}
	res.RuleBased, err = eval.CrossValidate(recs, o.TrainSizes, o.Folds, o.Seed, ruleFactory)
	if err != nil {
		return res, "", fmt.Errorf("experiments: rule-based sweep: %w", err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "corpus: %d labeled com records, %d-fold cross-validation\n\n", len(recs), o.Folds)
	fmt.Fprintf(&b, "%10s | %24s | %24s\n", "", "line error rate (Fig 2)", "document error rate (Fig 3)")
	fmt.Fprintf(&b, "%10s | %11s %12s | %11s %12s\n", "train size", "rule-based", "statistical", "rule-based", "statistical")
	for i := range res.Statistical {
		s := res.Statistical[i]
		r := res.RuleBased[i]
		fmt.Fprintf(&b, "%10d | %.4f±%.4f %.4f±%.4f | %.4f±%.4f %.4f±%.4f\n",
			s.TrainSize, r.LineMean, r.LineStd, s.LineMean, s.LineStd,
			r.DocMean, r.DocStd, s.DocMean, s.DocStd)
	}
	b.WriteString("\nExpected shape (paper Figs 2-3): statistical dominates rule-based at\nevery size; the gap is largest with few labeled examples.\n")
	return res, section("Figures 2 & 3 — error rate vs number of labeled examples", b.String()), nil
}

// Table1 trains the first-level CRF and lists its heaviest emission
// features per label, mirroring Table 1.
func Table1(o Options) (string, error) {
	o = o.Defaults()
	recs := Corpus(o)
	n := min(1000, len(recs))
	p, stats, err := TrainParser(recs[:n], o)
	if err != nil {
		return "", fmt.Errorf("experiments: table 1: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "first-level CRF: %d features (paper: ~1M), trained on %d records\n",
		stats.BlockFeatures, n)
	fmt.Fprintf(&b, "second-level CRF: %d features (paper: ~400K)\n\n", stats.FieldFeatures)
	for _, blk := range labels.AllBlocks() {
		top := p.BlockModel().TopStateFeatures(int(blk), 8)
		var words []string
		for _, w := range top {
			words = append(words, w.Obs)
		}
		fmt.Fprintf(&b, "%-11s %s\n", blk, strings.Join(words, ", "))
	}
	return section("Table 1 — heavily weighted features per first-level label", b.String()), nil
}

// Figure1 lists the strongest observation-conditioned transition features
// between distinct blocks, mirroring Figure 1's edge annotations.
func Figure1(o Options) (string, error) {
	o = o.Defaults()
	recs := Corpus(o)
	n := min(1000, len(recs))
	p, _, err := TrainParser(recs[:n], o)
	if err != nil {
		return "", fmt.Errorf("experiments: figure 1: %w", err)
	}
	top := p.BlockModel().TopTransitionFeatures(24)
	var b strings.Builder
	b.WriteString("edges: strongest cues that one block ends and another begins\n\n")
	for _, t := range top {
		fmt.Fprintf(&b, "%-11s -> %-11s  %-24s %+.3f\n",
			labels.Block(t.From), labels.Block(t.To), t.Obs, t.Weight)
	}
	return section("Figure 1 — predictive features for block transitions", b.String()), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
