// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) and survey (§6) on the synthetic ecosystem. Each
// experiment returns human-readable text mirroring the paper's table or
// figure, plus structured results the benchmarks assert on.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/crf"
	"repro/internal/labels"
	"repro/internal/optimize"
	"repro/internal/synth"
)

// Options scales the experiments. The defaults reproduce the paper's
// shapes in minutes; Quick shrinks everything for benchmarks and CI.
type Options struct {
	// CorpusSize is the number of labeled com records (the paper's 86K,
	// scaled). Default 4000.
	CorpusSize int
	// TrainSizes are the Figure 2/3 sweep sizes. Default 20/100/1000.
	TrainSizes []int
	// Folds for cross-validation. Default 5.
	Folds int
	// Seed for all sampling.
	Seed int64
	// SurveySize is the parsed-corpus size for §6. Default 30000.
	SurveySize int
	// CrawlSize is the number of domains crawled in the §4.1 experiment.
	// Default 1200.
	CrawlSize int
	// MaxIterations caps L-BFGS iterations during sweeps (keeps the
	// largest training sizes affordable). Default 80.
	MaxIterations int
}

// Defaults fills zero fields.
func (o Options) Defaults() Options {
	if o.CorpusSize == 0 {
		o.CorpusSize = 4000
	}
	if len(o.TrainSizes) == 0 {
		o.TrainSizes = []int{20, 100, 1000}
	}
	if o.Folds == 0 {
		o.Folds = 5
	}
	if o.Seed == 0 {
		o.Seed = 20151028 // IMC'15 opening day
	}
	if o.SurveySize == 0 {
		o.SurveySize = 30000
	}
	if o.CrawlSize == 0 {
		o.CrawlSize = 1200
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 80
	}
	return o
}

// Quick returns options small enough for unit tests and benchmarks.
func Quick() Options {
	return Options{
		CorpusSize: 600, TrainSizes: []int{20, 100}, Folds: 3,
		SurveySize: 2000, CrawlSize: 200, MaxIterations: 40,
	}.Defaults()
}

// corpusCache memoizes generated corpora per (size, seed) within a
// process, since several experiments share them.
var corpusCache sync.Map

// Corpus returns the shared labeled com corpus for the options.
func Corpus(o Options) []*labels.LabeledRecord {
	key := fmt.Sprintf("%d/%d", o.CorpusSize, o.Seed)
	if v, ok := corpusCache.Load(key); ok {
		return v.([]*labels.LabeledRecord)
	}
	recs := synth.GenerateLabeled(synth.Config{N: o.CorpusSize, Seed: o.Seed})
	corpusCache.Store(key, recs)
	return recs
}

// trainConfig is the core.Config used across experiments.
func trainConfig(o Options) core.Config {
	cfg := core.DefaultConfig()
	lbfgs := optimize.DefaultLBFGSConfig()
	lbfgs.MaxIterations = o.MaxIterations
	cfg.Train = crf.TrainConfig{LBFGS: lbfgs}
	return cfg
}

// TrainParser trains the statistical parser on a subset of the corpus.
func TrainParser(train []*labels.LabeledRecord, o Options) (*core.Parser, core.TrainStats, error) {
	return core.Train(train, trainConfig(o))
}

// section renders a titled block of experiment output.
func section(title, body string) string {
	var b strings.Builder
	b.WriteString(strings.Repeat("=", 72))
	b.WriteByte('\n')
	b.WriteString(title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", 72))
	b.WriteByte('\n')
	b.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		b.WriteByte('\n')
	}
	return b.String()
}
