package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/labels"
	"repro/internal/rulebased"
	"repro/internal/synth"
	"repro/internal/templatebased"
	"repro/internal/tokenize"
)

// Sec23Result carries the §2.3 baseline characterization numbers.
type Sec23Result struct {
	// DeftCoverage / RubyCoverage are template coverage fractions for the
	// large and small template sets (paper: 94% and 63%).
	DeftCoverage float64
	RubyCoverage float64
	// DriftSuccess is the fraction of *covered* records the large template
	// set still parses after four months of format drift (paper: the
	// parser "fail[s] on the vast majority").
	DriftSuccess float64
	// FreshSuccess is the same fraction without drift (sanity ceiling).
	FreshSuccess float64
	// GenericRuleRegistrant is the fraction of records whose registrant
	// line a generic rule-based parser identifies (pythonwhois: 59%).
	GenericRuleRegistrant float64
}

// templateSubset returns the records of the registrars that cover at most
// `frac` of the corpus by volume (most popular first) — modeling a
// template library that was written for the big registrars.
func templateSubset(recs []*labels.LabeledRecord, frac float64) []*labels.LabeledRecord {
	counts := make(map[string]int)
	for _, r := range recs {
		counts[r.Registrar]++
	}
	type kv struct {
		k string
		v int
	}
	var all []kv
	for k, v := range counts {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	keep := make(map[string]bool)
	cum := 0
	for _, e := range all {
		if float64(cum)/float64(len(recs)) >= frac {
			break
		}
		keep[e.k] = true
		cum += e.v
	}
	var out []*labels.LabeledRecord
	for _, r := range recs {
		if keep[r.Registrar] {
			out = append(out, r)
		}
	}
	return out
}

// Sec23 reproduces the baseline characterization of §2.3: template
// coverage, template fragility under format drift, and the registrant
// identification rate of a generic rule-based parser.
func Sec23(o Options) (Sec23Result, string, error) {
	o = o.Defaults()
	var res Sec23Result

	// Snapshot at template-authoring time (no drift).
	snapshot := synth.GenerateLabeled(synth.Config{N: o.CorpusSize, Seed: o.Seed + 40})
	deft := templatebased.Build(templateSubset(snapshot, 0.94), tokenize.Options{})
	ruby := templatebased.Build(templateSubset(snapshot, 0.63), tokenize.Options{})

	// Fresh test data, then the same distribution four months later with
	// format drift (the paper observed one large registrar change its
	// schema during the measurement).
	fresh := synth.GenerateLabeled(synth.Config{N: o.CorpusSize, Seed: o.Seed + 41})
	drifted := synth.GenerateLabeled(synth.Config{N: o.CorpusSize, Seed: o.Seed + 42, DriftFraction: 0.7})

	res.DeftCoverage = deft.Coverage(fresh)
	res.RubyCoverage = ruby.Coverage(fresh)

	success := func(p *templatebased.Parser, recs []*labels.LabeledRecord) float64 {
		covered, ok := 0, 0
		for _, r := range recs {
			if !p.HasTemplate(r.Registrar) {
				continue
			}
			covered++
			if _, _, err := p.ParseBlocks(r.Registrar, r.Text); err == nil {
				ok++
			} else if !errors.Is(err, templatebased.ErrMismatch) {
				return -1
			}
		}
		if covered == 0 {
			return 0
		}
		return float64(ok) / float64(covered)
	}
	res.FreshSuccess = success(deft, fresh)
	res.DriftSuccess = success(deft, drifted)

	// pythonwhois-style generic rule parser: built with no training data,
	// it has only the hand-written generic rules.
	generic := rulebased.Build(nil, tokenize.Options{})
	found, total := 0, 0
	for _, r := range fresh {
		nameLine := -1
		for i, ln := range r.Lines {
			if ln.Block == labels.Registrant && ln.Field == labels.FieldName {
				nameLine = i
				break
			}
		}
		if nameLine < 0 {
			continue
		}
		total++
		_, blocks := generic.ParseBlocks(r.Text)
		if blocks[nameLine] == labels.Registrant {
			found++
		}
	}
	if total > 0 {
		res.GenericRuleRegistrant = float64(found) / float64(total)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "template coverage (share of test records whose registrar has a template):\n")
	fmt.Fprintf(&b, "  large template set (deft-whois-like): %5.1f%%   (paper: 94%%)\n", 100*res.DeftCoverage)
	fmt.Fprintf(&b, "  small template set (ruby-whois-like): %5.1f%%   (paper: 63%%)\n\n", 100*res.RubyCoverage)
	fmt.Fprintf(&b, "template success on covered records:\n")
	fmt.Fprintf(&b, "  at template-authoring time:          %5.1f%%\n", 100*res.FreshSuccess)
	fmt.Fprintf(&b, "  after four months of format drift:   %5.1f%%   (paper: fails on the vast majority)\n\n", 100*res.DriftSuccess)
	fmt.Fprintf(&b, "generic rule-based registrant identification: %5.1f%%   (pythonwhois: 59%%)\n", 100*res.GenericRuleRegistrant)
	return res, section("§2.3 — existing approaches: coverage and fragility", b.String()), nil
}
