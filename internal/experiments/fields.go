package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/labels"
	"repro/internal/rulebased"
	"repro/internal/tokenize"
)

// FieldsSweep is an extension of the paper's Figure 2/3 protocol to the
// second-level CRF: registrant-subfield error versus training-set size,
// statistical versus rule-based. The paper trains the twelve-state
// registrant CRF but reports only first-level curves; this sweep fills in
// the second level with the same five-fold methodology.
func FieldsSweep(o Options) (SweepResult, string, error) {
	o = o.Defaults()
	recs := Corpus(o)

	statFactory := func(train []*labels.LabeledRecord) (eval.FieldParser, error) {
		p, _, err := TrainParser(train, o)
		return p, err
	}
	ruleFactory := func(train []*labels.LabeledRecord) (eval.FieldParser, error) {
		return rulebased.Build(train, tokenize.Options{}), nil
	}

	var res SweepResult
	var err error
	res.Statistical, err = eval.CrossValidateFields(recs, o.TrainSizes, o.Folds, o.Seed, statFactory)
	if err != nil {
		return res, "", fmt.Errorf("experiments: statistical field sweep: %w", err)
	}
	res.RuleBased, err = eval.CrossValidateFields(recs, o.TrainSizes, o.Folds, o.Seed, ruleFactory)
	if err != nil {
		return res, "", fmt.Errorf("experiments: rule-based field sweep: %w", err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "corpus: %d labeled com records, %d-fold cross-validation\n", len(recs), o.Folds)
	fmt.Fprintf(&b, "metric: error over registrant lines only (12-state second-level task)\n\n")
	fmt.Fprintf(&b, "%10s | %25s | %25s\n", "", "field line error", "field document error")
	fmt.Fprintf(&b, "%10s | %12s %12s | %12s %12s\n", "train size", "rule-based", "statistical", "rule-based", "statistical")
	for i := range res.Statistical {
		s := res.Statistical[i]
		r := res.RuleBased[i]
		fmt.Fprintf(&b, "%10d | %.4f±%.4f %.4f±%.4f | %.4f±%.4f %.4f±%.4f\n",
			s.TrainSize, r.LineMean, r.LineStd, s.LineMean, s.LineStd,
			r.DocMean, r.DocStd, s.DocMean, s.DocStd)
	}
	return res, section("Extension — second-level (registrant field) error vs training size", b.String()), nil
}
