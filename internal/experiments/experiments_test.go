package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run at Quick scale and assert the paper's *shapes*
// — who wins, and in which direction — not absolute numbers.

func TestFigures23Shape(t *testing.T) {
	o := Quick()
	res, text, err := Figures23(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Statistical) != len(o.TrainSizes) || len(res.RuleBased) != len(o.TrainSizes) {
		t.Fatalf("sweep lengths: %d stat, %d rule", len(res.Statistical), len(res.RuleBased))
	}
	for i := range res.Statistical {
		s, r := res.Statistical[i], res.RuleBased[i]
		if s.TrainSize != r.TrainSize {
			t.Fatalf("size mismatch at %d", i)
		}
		// Figure 2/3 shape: statistical dominates rule-based.
		if s.LineMean > r.LineMean {
			t.Errorf("size %d: statistical line error %.4f worse than rule-based %.4f",
				s.TrainSize, s.LineMean, r.LineMean)
		}
		if s.DocMean > r.DocMean {
			t.Errorf("size %d: statistical doc error %.4f worse than rule-based %.4f",
				s.TrainSize, s.DocMean, r.DocMean)
		}
	}
	// Both parsers improve with more data.
	first, last := res.Statistical[0], res.Statistical[len(res.Statistical)-1]
	if last.LineMean > first.LineMean+0.005 {
		t.Errorf("statistical error rose with more data: %.4f -> %.4f", first.LineMean, last.LineMean)
	}
	if !strings.Contains(text, "Figures 2 & 3") {
		t.Error("rendered text missing header")
	}
}

func TestTable1Output(t *testing.T) {
	text, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"registrant", "registrar", "domain", "date", "other", "null"} {
		if !strings.Contains(text, label) {
			t.Errorf("Table 1 output missing label %s", label)
		}
	}
	// The paper's key observation: registrant@T-style features dominate
	// the registrant row.
	if !strings.Contains(text, "@T") {
		t.Error("no title-side features surfaced")
	}
}

func TestFigure1Output(t *testing.T) {
	text, err := Figure1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "->") {
		t.Error("no transitions rendered")
	}
}

func TestTable2Shape(t *testing.T) {
	res, text, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("got %d TLD rows, want 12", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Table 2: "There is no case in which the rule-based parser
		// performs better than the statistical one."
		if r.StatErrors > r.RuleErrors {
			t.Errorf("%s: statistical (%d) worse than rule-based (%d)", r.TLD, r.StatErrors, r.RuleErrors)
		}
	}
	if res.RuleTLDsWithErrors <= res.StatTLDsWithErrors {
		t.Errorf("rule-based failed on %d TLDs, statistical on %d — wrong ordering",
			res.RuleTLDsWithErrors, res.StatTLDsWithErrors)
	}
	// §5.3: adaptation drives statistical errors to (near) zero.
	if res.AfterAdaptErrors > 1 {
		t.Errorf("after adaptation: %d errors (paper: 0)", res.AfterAdaptErrors)
	}
	if !strings.Contains(text, "coop") {
		t.Error("output missing coop row")
	}
}

func TestSec23Shape(t *testing.T) {
	res, _, err := Sec23(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.DeftCoverage <= res.RubyCoverage {
		t.Errorf("deft coverage %.3f should exceed ruby coverage %.3f",
			res.DeftCoverage, res.RubyCoverage)
	}
	if res.DeftCoverage < 0.8 {
		t.Errorf("deft coverage %.3f too low (paper: 94%%)", res.DeftCoverage)
	}
	if res.DriftSuccess >= res.FreshSuccess {
		t.Errorf("drift success %.3f should be below fresh success %.3f",
			res.DriftSuccess, res.FreshSuccess)
	}
	if res.GenericRuleRegistrant < 0.2 || res.GenericRuleRegistrant > 0.95 {
		t.Errorf("generic registrant identification %.3f implausible (pythonwhois: 59%%)",
			res.GenericRuleRegistrant)
	}
}

func TestSurveyShape(t *testing.T) {
	res, text, err := RunSurvey(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.RegistrarMatch < 0.9 {
		t.Errorf("registrar fidelity %.3f", res.RegistrarMatch)
	}
	if res.YearMatch < 0.9 {
		t.Errorf("year fidelity %.3f", res.YearMatch)
	}
	if res.PrivacyMatch < 0.9 {
		t.Errorf("privacy fidelity %.3f", res.PrivacyMatch)
	}
	t3all, _ := res.Survey.Table3()
	if t3all[0].Key != "United States" {
		t.Errorf("top country %q, want United States (Table 3)", t3all[0].Key)
	}
	t5all, _ := res.Survey.Table5()
	if !strings.Contains(t5all[0].Key, "GoDaddy") {
		t.Errorf("top registrar %q, want GoDaddy (Table 5)", t5all[0].Key)
	}
	for _, want := range []string{"Table 3", "Table 5", "Table 7", "Figure 4a", "Figure 5"} {
		if !strings.Contains(text, want) {
			t.Errorf("survey output missing %s", want)
		}
	}
}

func TestCorpusMemoized(t *testing.T) {
	o := Quick()
	a := Corpus(o)
	b := Corpus(o)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Error("corpus not memoized")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.CorpusSize == 0 || o.Folds == 0 || len(o.TrainSizes) == 0 || o.Seed == 0 {
		t.Errorf("defaults incomplete: %+v", o)
	}
}

func TestFieldsSweepShape(t *testing.T) {
	res, text, err := FieldsSweep(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Statistical {
		s, r := res.Statistical[i], res.RuleBased[i]
		if s.LineMean > r.LineMean+0.02 {
			t.Errorf("size %d: statistical field error %.4f far above rule-based %.4f",
				s.TrainSize, s.LineMean, r.LineMean)
		}
	}
	last := res.Statistical[len(res.Statistical)-1]
	if last.LineMean > 0.05 {
		t.Errorf("second-level error %.4f too high at size %d", last.LineMean, last.TrainSize)
	}
	if !strings.Contains(text, "registrant") {
		t.Error("output missing metric description")
	}
}
