package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/crawler"
	"repro/internal/registry"
	"repro/internal/synth"
	"repro/internal/whoisd"
)

// CrawlResult carries the §4.1 crawl reproduction numbers.
type CrawlResult struct {
	Stats          crawler.Stats
	Coverage       float64
	FailureRate    float64
	LimitedServers []string
	ParsedOK       int
}

// RunCrawl stands up the simulated com ecosystem on real loopback TCP
// sockets — a thin registry plus one rate-limited server per registrar —
// and crawls it with the adaptive two-step crawler, reproducing the §4.1
// methodology: rate-limit inference, source rotation, three attempts, and
// the ~7.5% terminal failure tail (modeled as domains whose thick record
// is gone).
func RunCrawl(o Options) (CrawlResult, string, error) {
	o = o.Defaults()
	domains := synth.Generate(synth.Config{N: o.CrawlSize, Seed: o.Seed + 5})
	eco := registry.BuildEcosystem(domains, 0.075)

	cluster, err := whoisd.StartCluster(eco, whoisd.ClusterConfig{
		RegistryLimit:  400,
		RegistrarLimit: 25,
		Window:         500 * time.Millisecond,
		Penalty:        1 * time.Second,
	})
	if err != nil {
		return CrawlResult{}, "", fmt.Errorf("experiments: start cluster: %w", err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := cluster.WaitReady(ctx); err != nil {
		return CrawlResult{}, "", err
	}

	c, err := crawler.New(crawler.Config{
		Resolver:        cluster.Directory,
		Sources:         []string{"127.0.0.2", "127.0.0.3", "127.0.0.4"},
		Workers:         16,
		InitialInterval: 2 * time.Millisecond,
		MaxInterval:     600 * time.Millisecond,
	})
	if err != nil {
		return CrawlResult{}, "", err
	}
	names := make([]string, len(domains))
	for i, d := range domains {
		names[i] = d.Reg.Domain
	}
	results, stats := c.Crawl(ctx, names)

	var res CrawlResult
	res.Stats = stats
	res.Coverage = stats.Coverage()
	res.FailureRate = stats.FailureRate()
	res.LimitedServers = c.LimitedServers()
	for _, r := range results {
		if r.Thick != "" {
			res.ParsedOK++
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "crawled %d com domains via thin->thick two-step lookups over TCP\n\n", stats.Total)
	fmt.Fprintf(&b, "thick records obtained: %d (coverage %.1f%%; paper: \"a bit over 90%%\")\n", stats.ThickOK, 100*res.Coverage)
	fmt.Fprintf(&b, "terminal failures:      %d (%.1f%%; paper: ~7.5%% after 3 attempts)\n", stats.Failures+stats.NoMatch, 100*res.FailureRate)
	fmt.Fprintf(&b, "rate-limit refusals:    %d (crawler inferred limits and backed off)\n", stats.RateLimitHits)
	fmt.Fprintf(&b, "retries issued:         %d\n", stats.Retries)
	fmt.Fprintf(&b, "elapsed:                %v\n\n", stats.Elapsed.Round(time.Millisecond))
	if len(res.LimitedServers) > 0 {
		fmt.Fprintf(&b, "servers that rate limited us, with inferred query budgets:\n")
		for _, s := range res.LimitedServers {
			fmt.Fprintf(&b, "  %-36s %.1f q/s\n", s, c.InferredRate(s))
		}
	}
	return res, section("§4.1 — WHOIS crawling with rate-limit inference", b.String()), nil
}
