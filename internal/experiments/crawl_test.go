package experiments

import "testing"

func TestRunCrawlShape(t *testing.T) {
	if testing.Short() {
		t.Skip("crawl experiment uses real sockets and pacing delays")
	}
	res, text, err := RunCrawl(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.85 {
		t.Errorf("coverage %.3f, paper reports >90%%", res.Coverage)
	}
	if res.FailureRate > 0.15 {
		t.Errorf("failure rate %.3f, paper reports ~7.5%%", res.FailureRate)
	}
	if res.Stats.RateLimitHits == 0 {
		t.Error("no rate limiting observed; the adaptation path went unexercised")
	}
	if res.ParsedOK == 0 {
		t.Error("no thick records retrieved")
	}
	if text == "" {
		t.Error("empty output")
	}
}
