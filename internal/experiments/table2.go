package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/rulebased"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

// TLDResult is one Table 2 row.
type TLDResult struct {
	TLD        string
	Domain     string
	Lines      int
	RuleErrors int
	StatErrors int
}

// Table2Result carries the per-TLD comparison plus the §5.3 adaptation
// outcome.
type Table2Result struct {
	Rows []TLDResult
	// StatTLDsWithErrors / RuleTLDsWithErrors count TLDs where each
	// parser made >= 1 error (paper: 4 vs 10).
	StatTLDsWithErrors int
	RuleTLDsWithErrors int
	// AfterAdaptErrors is the statistical parser's total error count on
	// the same records after adding one labeled example per failing TLD
	// and retraining (paper: 0).
	AfterAdaptErrors int
	AddedExamples    int
}

func countErrors(pred []labels.Block, rec *labels.LabeledRecord) int {
	bad := 0
	for i := range rec.Lines {
		if pred[i] != rec.Lines[i].Block {
			bad++
		}
	}
	return bad
}

// Table2 trains both parsers on com only, then evaluates one sample record
// per new TLD (§5.2). It then runs the §5.3 maintainability comparison:
// one extra labeled example per failing TLD, retrain, re-evaluate.
func Table2(o Options) (Table2Result, string, error) {
	o = o.Defaults()
	recs := Corpus(o)
	n := min(2000, len(recs))
	stat, _, err := TrainParser(recs[:n], o)
	if err != nil {
		return Table2Result{}, "", fmt.Errorf("experiments: table 2: %w", err)
	}
	rule := rulebased.Build(recs[:n], tokenize.Options{})

	var res Table2Result
	evalTLD := func(p *core.Parser) []TLDResult {
		var rows []TLDResult
		for k, tld := range synth.NewTLDs() {
			// One record per TLD suffices: formatting within a TLD is
			// uniform (§5.2). Offset the seed per TLD so the sample
			// domains differ, and keep adaptation examples (below) on
			// distinct records.
			d := synth.GenerateNewTLD(tld, 1, o.Seed+7+int64(k))[0]
			rec := d.Labeled()
			_, sb := p.ParseBlocks(rec.Text)
			_, rb := rule.ParseBlocks(rec.Text)
			rows = append(rows, TLDResult{
				TLD: tld, Domain: d.Reg.Domain, Lines: len(rec.Lines),
				RuleErrors: countErrors(rb, rec), StatErrors: countErrors(sb, rec),
			})
		}
		return rows
	}
	res.Rows = evalTLD(stat)
	for _, r := range res.Rows {
		if r.StatErrors > 0 {
			res.StatTLDsWithErrors++
		}
		if r.RuleErrors > 0 {
			res.RuleTLDsWithErrors++
		}
	}

	// §5.3 adaptation: add ONE labeled example from each TLD the
	// statistical parser failed on, retrain, re-evaluate.
	train := append([]*labels.LabeledRecord{}, recs[:n]...)
	for _, r := range res.Rows {
		if r.StatErrors == 0 {
			continue
		}
		extra := synth.GenerateNewTLD(r.TLD, 1, o.Seed+1000)[0]
		train = append(train, extra.Labeled())
		res.AddedExamples++
	}
	if res.AddedExamples > 0 {
		adapted, _, err := TrainParser(train, o)
		if err != nil {
			return res, "", fmt.Errorf("experiments: adaptation retrain: %w", err)
		}
		for k, tld := range synth.NewTLDs() {
			d := synth.GenerateNewTLD(tld, 1, o.Seed+7+int64(k))[0]
			rec := d.Labeled()
			_, sb := adapted.ParseBlocks(rec.Text)
			res.AfterAdaptErrors += countErrors(sb, rec)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trained on %d com records only; one sample record per new TLD\n\n", n)
	fmt.Fprintf(&b, "%-8s %-22s %12s %12s\n", "TLD", "(example)", "rule-based", "statistical")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-8s %-22s %8d/%-4d %8d/%-4d\n", r.TLD, "("+r.Domain+")", r.RuleErrors, r.Lines, r.StatErrors, r.Lines)
	}
	fmt.Fprintf(&b, "\nTLDs with errors: rule-based %d/12, statistical %d/12 (paper: 10 vs 4)\n",
		res.RuleTLDsWithErrors, res.StatTLDsWithErrors)
	fmt.Fprintf(&b, "\n§5.3 maintainability: after adding %d labeled example(s) and\nretraining, statistical errors across all 12 TLDs: %d (paper: 0)\n",
		res.AddedExamples, res.AfterAdaptErrors)
	return res, section("Table 2 — parser performance on new TLDs (+ §5.3 adaptation)", b.String()), nil
}
