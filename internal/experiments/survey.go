package experiments

import (
	"fmt"
	"strings"

	"repro/internal/survey"
	"repro/internal/synth"
)

// SurveyResult carries the §6 aggregates plus parse-fidelity checks
// comparing parsed facts against the generator's ground truth.
type SurveyResult struct {
	Survey *survey.Survey
	// Fidelity: fraction of records where the parsed value matches the
	// seeded ground truth.
	RegistrarMatch float64
	CountryMatch   float64
	YearMatch      float64
	PrivacyMatch   float64
	Domains        int
}

// RunSurvey generates the survey corpus, parses every record with a
// CRF trained on a small labeled sample, and aggregates §6's tables.
func RunSurvey(o Options) (SurveyResult, string, error) {
	o = o.Defaults()
	recs := Corpus(o)
	n := min(1000, len(recs))
	parser, _, err := TrainParser(recs[:n], o)
	if err != nil {
		return SurveyResult{}, "", fmt.Errorf("experiments: survey: %w", err)
	}

	domains := synth.Generate(synth.Config{
		N: o.SurveySize, Seed: o.Seed + 99, BrandFraction: 0.02,
	})

	var res SurveyResult
	res.Domains = len(domains)
	var regOK, ctryOK, yearOK, privOK int

	texts := make([]string, len(domains))
	for i, d := range domains {
		texts[i] = d.Render().Text
	}
	parsed := parser.ParseAll(texts, 0)

	facts := make([]survey.Facts, 0, len(domains))
	for i, d := range domains {
		pr := parsed[i]
		f := survey.FactsFrom(pr, d.Blacklisted)
		if f.Registrar == "" {
			// Legacy formats (netsol family) omit the registrar from the
			// thick record; the paper's pipeline always had the thin
			// record's "Registrar:" line to fall back on (§2.2).
			f.Registrar = d.Reg.RegistrarName
		}
		facts = append(facts, f)

		if f.Registrar == d.Reg.RegistrarName {
			regOK++
		}
		truthCountry := survey.CanonicalCountry(d.Reg.Registrant.CountryCode)
		if d.Reg.Privacy || f.Country == truthCountry {
			ctryOK++
		}
		if f.CreatedYear == d.Reg.Created.Year() {
			yearOK++
		}
		if f.Privacy == d.Reg.Privacy {
			privOK++
		}
	}
	res.RegistrarMatch = float64(regOK) / float64(len(domains))
	res.CountryMatch = float64(ctryOK) / float64(len(domains))
	res.YearMatch = float64(yearOK) / float64(len(domains))
	res.PrivacyMatch = float64(privOK) / float64(len(domains))
	res.Survey = survey.New(facts)

	var brands []string
	for _, b := range BrandNames() {
		brands = append(brands, b)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "surveyed %d parsed com records (paper: 102M)\n", res.Domains)
	fmt.Fprintf(&b, "parse fidelity vs ground truth: registrar %.1f%%, country %.1f%%, year %.1f%%, privacy flag %.1f%%\n\n",
		100*res.RegistrarMatch, 100*res.CountryMatch, 100*res.YearMatch, 100*res.PrivacyMatch)

	t3all, t3new := res.Survey.Table3()
	b.WriteString(survey.RenderRows("Table 3 (left) — registrant countries, all time", t3all))
	b.WriteByte('\n')
	b.WriteString(survey.RenderRows("Table 3 (right) — registrant countries, created 2014", t3new))
	b.WriteByte('\n')
	b.WriteString(survey.RenderRows("Table 4 — brand companies with the most com domains", res.Survey.Table4(brands)))
	b.WriteByte('\n')
	b.WriteString(survey.RenderRows("§6.1 — organizations with the most com domains (sellers lead)", res.Survey.TopOrgs(8)))
	b.WriteByte('\n')
	t5all, t5new := res.Survey.Table5()
	b.WriteString(survey.RenderRows("Table 5 (left) — registrars, all time", t5all))
	b.WriteByte('\n')
	b.WriteString(survey.RenderRows("Table 5 (right) — registrars, created 2014", t5new))
	b.WriteByte('\n')
	b.WriteString(survey.RenderRows("Table 6 — registrars of privacy-protected domains", res.Survey.Table6()))
	b.WriteByte('\n')
	b.WriteString(survey.RenderRows("Table 7 — privacy protection services", res.Survey.Table7()))
	b.WriteByte('\n')
	b.WriteString(survey.RenderRows("Table 8 — registrant countries of DBL-listed 2014 domains", res.Survey.Table8()))
	b.WriteByte('\n')
	b.WriteString(survey.RenderRows("Table 9 — registrars of DBL-listed 2014 domains", res.Survey.Table9()))
	b.WriteByte('\n')
	b.WriteString(survey.RenderHistogram("Figure 4a — domains created per year", res.Survey.Figure4a()))
	b.WriteByte('\n')
	b.WriteString(survey.RenderMixes("Figure 4b — country/privacy proportions by creation year",
		res.Survey.Figure4b(1995), survey.Figure4bLabels()))
	b.WriteByte('\n')
	b.WriteString(survey.RenderRegistrarMixes("Figure 5 — top registrant countries for selected registrars",
		res.Survey.Figure5([]string{"eNom", "HiChina", "GMO", "Melbourne"})))
	return res, section("§6 — surveying .com (Tables 3-9, Figures 4-5)", b.String()), nil
}

// BrandNames lists the Table 4 brand organizations the generator seeds.
func BrandNames() []string {
	return []string{
		"Amazon Technologies, Inc.", "AOL Inc.", "Microsoft Corporation",
		"21st Century Fox America, Inc.", "Warner Bros. Entertainment Inc.",
		"Yahoo! Inc.", "Disney Enterprises, Inc.", "Google Inc.",
		"AT&T Services, Inc.", "eBay Inc.", "Nike, Inc.",
	}
}
