package tokenize

import (
	"strings"
	"testing"
	"testing/quick"
)

func hasObs(ln Line, obs string) bool {
	for _, o := range ln.Obs {
		if o == obs {
			return true
		}
	}
	return false
}

func TestSplitTitleValueColon(t *testing.T) {
	title, value, ok := SplitTitleValue("Registrant Name: John Smith")
	if !ok || title != "Registrant Name" || value != "John Smith" {
		t.Errorf("got (%q, %q, %v)", title, value, ok)
	}
}

func TestSplitTitleValueTab(t *testing.T) {
	title, value, ok := SplitTitleValue("DOMAIN\texample.com")
	if !ok || title != "DOMAIN" || value != "example.com" {
		t.Errorf("got (%q, %q, %v)", title, value, ok)
	}
}

func TestSplitTitleValueDots(t *testing.T) {
	title, value, ok := SplitTitleValue("Domain Name..........: example.com")
	if !ok || title != "Domain Name" || value != "example.com" {
		t.Errorf("got (%q, %q, %v)", title, value, ok)
	}
}

func TestSplitTitleValueBrackets(t *testing.T) {
	title, value, ok := SplitTitleValue("[Domain Name] EXAMPLE.COM")
	if !ok || title != "Domain Name" || value != "EXAMPLE.COM" {
		t.Errorf("got (%q, %q, %v)", title, value, ok)
	}
}

func TestSplitTitleValueURLNotSeparator(t *testing.T) {
	// The colon in "http://" must not split the line; the first real
	// separator is the one after "URL".
	title, value, ok := SplitTitleValue("Registrar URL: http://www.example.com")
	if !ok || title != "Registrar URL" || value != "http://www.example.com" {
		t.Errorf("got (%q, %q, %v)", title, value, ok)
	}
	// A line that is only a URL has no separator at all.
	if _, _, ok := SplitTitleValue("http://www.example.com"); ok {
		t.Error("bare URL should not split")
	}
}

func TestSplitTitleValueNoSeparator(t *testing.T) {
	title, value, ok := SplitTitleValue("John Smith")
	if ok || title != "" || value != "John Smith" {
		t.Errorf("got (%q, %q, %v)", title, value, ok)
	}
}

func TestSplitTitleValueSingleDotNotSeparator(t *testing.T) {
	_, value, ok := SplitTitleValue("ns1.example.com")
	if ok || value != "ns1.example.com" {
		t.Errorf("single dots must not separate: (%q, %v)", value, ok)
	}
}

func TestSplitTitleValueLeadingColonResidue(t *testing.T) {
	title, value, ok := SplitTitleValue("Registrar..........: eNom, Inc.")
	if !ok || title != "Registrar" || value != "eNom, Inc." {
		t.Errorf("got (%q, %q, %v)", title, value, ok)
	}
}

func TestWords(t *testing.T) {
	got := Words("Registrant Name: John-Smith 2015")
	want := []string{"registrant", "name", "john", "smith", "2015"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWordsEmpty(t *testing.T) {
	if got := Words("  ...  "); len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestTokenizeDropsEmptyAndSymbolOnlyLines(t *testing.T) {
	text := "Domain Name: a.com\n\n   \n----------\nRegistrar: X"
	lines := Tokenize(text, Options{})
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %+v", len(lines), lines)
	}
	if !hasObs(lines[1], MarkNL) {
		t.Error("second line should carry NL after blank/symbol-only gap")
	}
}

func TestTokenizeTitleValueAnnotation(t *testing.T) {
	lines := Tokenize("Registrant Name: John", Options{})
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !hasObs(lines[0], "registrant@T") || !hasObs(lines[0], "name@T") {
		t.Errorf("missing @T observations: %v", lines[0].Obs)
	}
	if !hasObs(lines[0], "john@V") {
		t.Errorf("missing @V observation: %v", lines[0].Obs)
	}
	if !hasObs(lines[0], MarkSEP) {
		t.Errorf("missing SEP marker: %v", lines[0].Obs)
	}
}

func TestTokenizeNoSeparatorAllValue(t *testing.T) {
	lines := Tokenize("John Smith", Options{})
	if !hasObs(lines[0], "john@V") || !hasObs(lines[0], "smith@V") {
		t.Errorf("bare line words should be @V: %v", lines[0].Obs)
	}
	for _, o := range lines[0].Obs {
		if strings.HasSuffix(o, "@T") {
			t.Errorf("bare line should have no @T observations: %v", lines[0].Obs)
		}
	}
}

func TestTokenizeShiftMarkers(t *testing.T) {
	text := "Registrant:\n    John Smith\nDomain: x.com"
	lines := Tokenize(text, Options{})
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !hasObs(lines[1], MarkSHR) {
		t.Errorf("indented line should carry SHR: %v", lines[1].Obs)
	}
	if !hasObs(lines[2], MarkSHL) {
		t.Errorf("outdented line should carry SHL: %v", lines[2].Obs)
	}
}

func TestTokenizeSymbolMarker(t *testing.T) {
	lines := Tokenize("% NOTICE: legal text", Options{})
	if !hasObs(lines[0], MarkSYM) {
		t.Errorf("%%-leading line should carry SYM: %v", lines[0].Obs)
	}
}

func TestTokenizeBOLAndEOL(t *testing.T) {
	lines := Tokenize("first: 1\nsecond: 2", Options{})
	if !hasObs(lines[0], MarkBOL) {
		t.Error("first line should carry BOL")
	}
	if !hasObs(lines[1], MarkEOL) {
		t.Error("last line should carry EOL")
	}
}

func TestWordClasses(t *testing.T) {
	cases := []struct {
		line string
		want string
	}{
		{"Zip: 92122", Cls5Digit},
		{"Email: a@b.com", ClsEmail},
		{"Phone: +1.8585551212", ClsPhone},
		{"Year: 2015", ClsYear},
		{"Date: 2015-02-27", ClsDate},
		{"Date: 27-feb-2015", ClsDate},
		{"URL: http://x.com", ClsURL},
		{"Server IP: 192.168.1.1", ClsIP},
		{"Code: NSW", ClsCaps},
	}
	for _, c := range cases {
		lines := Tokenize(c.line, Options{})
		if !hasObs(lines[0], c.want) {
			t.Errorf("%q: missing %s in %v", c.line, c.want, lines[0].Obs)
		}
	}
}

func TestWordClassNegatives(t *testing.T) {
	lines := Tokenize("Name: John Smith", Options{})
	for _, cls := range []string{Cls5Digit, ClsEmail, ClsPhone, ClsDate, ClsURL} {
		if hasObs(lines[0], cls) {
			t.Errorf("plain name line should not carry %s", cls)
		}
	}
}

func TestOptionsDisableTitleValue(t *testing.T) {
	lines := Tokenize("Registrant Name: John", Options{DisableTitleValue: true})
	if !hasObs(lines[0], "registrant") || !hasObs(lines[0], "john") {
		t.Errorf("bare words missing: %v", lines[0].Obs)
	}
	for _, o := range lines[0].Obs {
		if strings.HasSuffix(o, "@T") || strings.HasSuffix(o, "@V") {
			t.Errorf("suffixed observation with DisableTitleValue: %q", o)
		}
	}
}

func TestOptionsDisableLayout(t *testing.T) {
	lines := Tokenize("a: 1\n\nb: 2", Options{DisableLayout: true})
	for _, ln := range lines {
		for _, o := range ln.Obs {
			switch o {
			case MarkNL, MarkSEP, MarkBOL, MarkEOL, MarkSHL, MarkSHR, MarkSYM:
				t.Errorf("layout marker %q with DisableLayout", o)
			}
		}
	}
}

func TestOptionsDisableClasses(t *testing.T) {
	lines := Tokenize("Zip: 92122", Options{DisableClasses: true})
	for _, o := range lines[0].Obs {
		if strings.HasPrefix(o, "CLS:") {
			t.Errorf("class observation %q with DisableClasses", o)
		}
	}
}

func TestTokenizeCRLF(t *testing.T) {
	lines := Tokenize("a: 1\r\nb: 2\r\n", Options{})
	if len(lines) != 2 {
		t.Fatalf("CRLF input: got %d lines, want 2", len(lines))
	}
	if strings.HasSuffix(lines[0].Value, "\r") {
		t.Error("value retains carriage return")
	}
}

// Property: the number of retained lines equals the number of input lines
// containing at least one alphanumeric character, regardless of content.
func TestTokenizeRetentionInvariant(t *testing.T) {
	f := func(raw []string) bool {
		text := strings.Join(raw, "\n")
		want := 0
		for _, line := range strings.Split(text, "\n") {
			line = strings.TrimRight(line, "\r")
			if hasAlnum(line) {
				want++
			}
		}
		return len(Tokenize(text, Options{})) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every word observation ends in @T or @V (default options), and
// title words never appear after value words stopped.
func TestTokenizeObservationShapes(t *testing.T) {
	f := func(raw string) bool {
		for _, ln := range Tokenize(raw, Options{}) {
			for _, o := range ln.Obs {
				if strings.HasPrefix(o, "CLS:") || isMarker(o) {
					continue
				}
				if !strings.HasSuffix(o, "@T") && !strings.HasSuffix(o, "@V") {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func isMarker(o string) bool {
	switch o {
	case MarkNL, MarkSHL, MarkSHR, MarkSYM, MarkSEP, MarkNoV, MarkBOL, MarkEOL:
		return true
	}
	return false
}

func TestLooksDate(t *testing.T) {
	yes := []string{"2015-02-27", "27-feb-2015", "2015/02/27", "02/27/2015", "2015.01.02", "2015-02-27t10:00:00z"}
	for _, s := range yes {
		if !looksDate(s) {
			t.Errorf("looksDate(%q) = false, want true", s)
		}
	}
	no := []string{"hello", "1-2", "a-b-c", "192.168.1.1.5", "+1.858.555"}
	for _, s := range no {
		if looksDate(s) {
			t.Errorf("looksDate(%q) = true, want false", s)
		}
	}
}

func TestLooksPhone(t *testing.T) {
	yes := []string{"+1.8585551212", "+44-20-7946-0000", "(858) 555-1212"}
	for _, s := range yes {
		if !looksPhone(s) {
			t.Errorf("looksPhone(%q) = false", s)
		}
	}
	no := []string{"12345", "john", "+1.abc"}
	for _, s := range no {
		if looksPhone(s) {
			t.Errorf("looksPhone(%q) = true", s)
		}
	}
}

func TestSplitTitleValueSpacePaddedColon(t *testing.T) {
	// dots-2 style: title padded with spaces, then ": value".
	title, value, ok := SplitTitleValue("Registrant Name          : John")
	if !ok || title != "Registrant Name" || value != "John" {
		t.Errorf("got (%q, %q, %v)", title, value, ok)
	}
}

func TestTokenizeTabIndentCountsAsShift(t *testing.T) {
	lines := Tokenize("Header:\n\tvalue under tab", Options{})
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !hasObs(lines[1], MarkSHR) {
		t.Errorf("tab-indented line should carry SHR: %v", lines[1].Obs)
	}
}
