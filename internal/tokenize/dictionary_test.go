package tokenize

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func linesFor(obs ...string) [][]Line {
	return [][]Line{{{Obs: obs}}}
}

func TestBuildDictionaryTrimsInfrequent(t *testing.T) {
	recs := linesFor("common", "common", "common", "rare")
	d := BuildDictionary(recs, 2)
	if _, ok := d.ID("common"); !ok {
		t.Error("frequent observation missing")
	}
	if _, ok := d.ID("rare"); ok {
		t.Error("rare observation should be trimmed")
	}
}

func TestBuildDictionaryKeepsClosedClass(t *testing.T) {
	recs := linesFor(MarkNL, MarkSEP, "CLS:5DIGIT", "rareword")
	d := BuildDictionary(recs, 5)
	for _, obs := range []string{MarkNL, MarkSEP, "CLS:5DIGIT"} {
		if _, ok := d.ID(obs); !ok {
			t.Errorf("closed-class observation %q trimmed", obs)
		}
	}
	if _, ok := d.ID("rareword"); ok {
		t.Error("rare open-class word should be trimmed")
	}
}

func TestDictionaryDeterministicIDs(t *testing.T) {
	recs := linesFor("b", "a", "c", "a")
	d1 := BuildDictionary(recs, 1)
	d2 := BuildDictionary(recs, 1)
	if d1.Len() != d2.Len() {
		t.Fatal("lengths differ")
	}
	for i := 0; i < d1.Len(); i++ {
		if d1.Name(i) != d2.Name(i) {
			t.Fatalf("id %d: %q vs %q", i, d1.Name(i), d2.Name(i))
		}
	}
	// Sorted assignment.
	for i := 1; i < d1.Len(); i++ {
		if d1.Name(i-1) >= d1.Name(i) {
			t.Fatalf("names not sorted: %q >= %q", d1.Name(i-1), d1.Name(i))
		}
	}
}

func TestDictionaryCounts(t *testing.T) {
	recs := linesFor("x", "x", "y")
	d := BuildDictionary(recs, 1)
	id, _ := d.ID("x")
	if d.Count(id) != 2 {
		t.Errorf("count(x) = %d, want 2", d.Count(id))
	}
}

func TestMapLineDropsUnknown(t *testing.T) {
	d := BuildDictionary(linesFor("known"), 1)
	ids := d.MapLine(Line{Obs: []string{"known", "unknown"}})
	if len(ids) != 1 {
		t.Fatalf("got %d ids, want 1", len(ids))
	}
	if d.Name(ids[0]) != "known" {
		t.Errorf("mapped to %q", d.Name(ids[0]))
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	recs := linesFor("alpha", "beta", "beta", MarkNL, "gamma with spaces")
	d := BuildDictionary(recs, 1)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDictionary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("length after round trip: %d vs %d", d2.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if d.Name(i) != d2.Name(i) || d.Count(i) != d2.Count(i) {
			t.Fatalf("entry %d differs: (%q,%d) vs (%q,%d)",
				i, d.Name(i), d.Count(i), d2.Name(i), d2.Count(i))
		}
	}
}

func TestDictionaryRoundTripProperty(t *testing.T) {
	f := func(words []string) bool {
		var obs []string
		for _, w := range words {
			w = strings.Map(func(r rune) rune {
				if r == '\n' || r == '\t' {
					return '_'
				}
				return r
			}, w)
			if w != "" {
				obs = append(obs, w)
			}
		}
		if len(obs) == 0 {
			return true
		}
		d := BuildDictionary(linesFor(obs...), 1)
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			return false
		}
		d2, err := ReadDictionary(&buf)
		if err != nil || d2.Len() != d.Len() {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			if d.Name(i) != d2.Name(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadDictionaryRejectsMalformed(t *testing.T) {
	cases := []string{
		"notab",
		"x\tname",
	}
	for _, c := range cases {
		if _, err := ReadDictionary(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
	if _, err := ReadDictionary(strings.NewReader("1\tdup\n2\tdup\n")); err == nil {
		t.Error("duplicate entries should be rejected")
	}
}

func TestBuildDictionaryMinCountFloor(t *testing.T) {
	d := BuildDictionary(linesFor("x"), 0) // treated as 1
	if _, ok := d.ID("x"); !ok {
		t.Error("minCount 0 should behave as 1")
	}
}
