// Package tokenize turns raw WHOIS record text into the per-line observation
// sequences consumed by the CRF and baseline parsers.
//
// Following §3 of the paper, a record is chunked into its non-empty lines;
// each line becomes one token whose observations encode:
//
//   - every word, suffixed with "@T" when it appears to the left of the
//     first separator (the field *title*) and "@V" when it appears to the
//     right (the field *value*); lines without a separator are all "@V";
//   - layout markers: "NL" when the line is preceded by one or more blank
//     lines, "SHL"/"SHR" when the indentation shifts left or right relative
//     to the previous line, "SYM" when the line starts with a symbol such
//     as '#' or '%', and "SEP" when a separator is present;
//   - word classes such as "CLS:5DIGIT" (a five-digit number, predictive of
//     postcodes), "CLS:EMAIL", "CLS:PHONE", "CLS:YEAR", "CLS:DATE",
//     "CLS:URL" and "CLS:NUM".
//
// Lines that are empty or contain no alphanumeric characters receive no
// label in the paper's setup; Tokenize therefore drops them, while folding
// their layout signal (the NL marker) into the next retained line.
package tokenize

import (
	"strings"
	"unicode"
)

// Marker observation strings shared with the feature templates.
const (
	MarkNL  = "NL"     // preceded by one or more blank/contentless lines
	MarkSHL = "SHL"    // indentation shifted left vs. previous line
	MarkSHR = "SHR"    // indentation shifted right vs. previous line
	MarkSYM = "SYM"    // line begins with a non-alphanumeric symbol
	MarkSEP = "SEP"    // line contains a title/value separator
	MarkNoV = "NOVAL"  // separator present but value side empty
	MarkBOL = "BOL"    // first retained line of the record
	MarkEOL = "LASTLN" // last retained line of the record
)

// Word-class observation strings.
const (
	Cls5Digit = "CLS:5DIGIT"
	ClsEmail  = "CLS:EMAIL"
	ClsPhone  = "CLS:PHONE"
	ClsYear   = "CLS:YEAR"
	ClsDate   = "CLS:DATE"
	ClsURL    = "CLS:URL"
	ClsNum    = "CLS:NUM"
	ClsIP     = "CLS:IP"
	ClsCaps   = "CLS:ALLCAPS"
)

// Options selects which observation families Tokenize emits. The zero value
// enables everything; the Disable fields exist for the ablation benchmarks.
type Options struct {
	// DisableTitleValue drops the @T/@V suffix: every word is emitted bare.
	DisableTitleValue bool
	// DisableLayout drops NL/SHL/SHR/SYM/SEP/BOL markers.
	DisableLayout bool
	// DisableClasses drops CLS:* word-class observations.
	DisableClasses bool
}

// Line is one retained (labelable) line of a WHOIS record.
type Line struct {
	// Raw is the original text of the line, untrimmed.
	Raw string
	// Title is the trimmed text left of the separator ("" if none).
	Title string
	// Value is the trimmed text right of the separator, or the whole
	// trimmed line when there is no separator.
	Value string
	// HasSep reports whether a title/value separator was found.
	HasSep bool
	// Obs holds the observation strings for feature extraction.
	Obs []string
}

// Tokenize splits text into retained lines with observations attached.
func Tokenize(text string, opts Options) []Line {
	rawLines := strings.Split(text, "\n")
	out := make([]Line, 0, len(rawLines))
	pendingNL := false
	prevIndent := -1
	for _, raw := range rawLines {
		raw = strings.TrimRight(raw, "\r")
		if !hasAlnum(raw) {
			pendingNL = true
			continue
		}
		ln := buildLine(raw, opts)
		if !opts.DisableLayout {
			if pendingNL {
				ln.Obs = append(ln.Obs, MarkNL)
			}
			if len(out) == 0 {
				ln.Obs = append(ln.Obs, MarkBOL)
			}
			indent := leadingSpace(raw)
			if prevIndent >= 0 {
				if indent < prevIndent {
					ln.Obs = append(ln.Obs, MarkSHL)
				} else if indent > prevIndent {
					ln.Obs = append(ln.Obs, MarkSHR)
				}
			}
			prevIndent = indent
		}
		pendingNL = false
		out = append(out, ln)
	}
	if len(out) > 0 {
		last := &out[len(out)-1]
		if !opts.DisableLayout {
			last.Obs = append(last.Obs, MarkEOL)
		}
	}
	return out
}

func buildLine(raw string, opts Options) Line {
	trimmed := strings.TrimSpace(raw)
	title, value, hasSep := SplitTitleValue(trimmed)
	ln := Line{Raw: raw, Title: title, Value: value, HasSep: hasSep}
	// Most lines produce a handful of word observations plus a few markers
	// and classes; one right-sized allocation beats append's doubling.
	ln.Obs = make([]string, 0, 16)

	if !opts.DisableLayout {
		if hasSep {
			ln.Obs = append(ln.Obs, MarkSEP)
			if value == "" {
				ln.Obs = append(ln.Obs, MarkNoV)
			}
		}
		if startsWithSymbol(trimmed) {
			ln.Obs = append(ln.Obs, MarkSYM)
		}
	}

	appendWords := func(text, suffix string) {
		for _, w := range Words(text) {
			if opts.DisableTitleValue {
				ln.Obs = append(ln.Obs, w)
			} else {
				ln.Obs = append(ln.Obs, w+suffix)
			}
		}
	}
	appendWords(title, "@T")
	if hasSep {
		appendWords(value, "@V")
	} else {
		appendWords(trimmed, "@V")
	}

	if !opts.DisableClasses {
		ln.Obs = append(ln.Obs, classes(value)...)
	}
	return ln
}

// SplitTitleValue finds the first separator in a trimmed line and splits it
// into a title and value. Separators, per §3.3 and §4.2 of the paper, are
// colons, tabs, and ellipses (runs of two or more dots); a colon that is
// part of a URL scheme ("http://", "https://") is not a separator. The
// bracketed-title convention of Japanese registrars ("[Domain Name] X")
// is also recognized.
func SplitTitleValue(s string) (title, value string, ok bool) {
	if strings.HasPrefix(s, "[") {
		if end := strings.IndexByte(s, ']'); end > 1 {
			title = strings.TrimSpace(s[1:end])
			value = strings.TrimSpace(s[end+1:])
			if title != "" && value != "" {
				return title, value, true
			}
		}
	}
	idx, width := -1, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ':':
			if isSchemeColon(s, i) {
				continue
			}
			idx, width = i, 1
		case '\t':
			idx, width = i, 1
		case '.':
			j := i
			for j < len(s) && s[j] == '.' {
				j++
			}
			if j-i >= 2 {
				idx, width = i, j-i
			} else {
				continue
			}
		default:
			continue
		}
		break
	}
	if idx < 0 {
		return "", strings.TrimSpace(s), false
	}
	// A separator at position 0 means there is no title; treat the line as
	// value-only (common for "> ..." decorations already filtered by SYM).
	title = strings.TrimSpace(s[:idx])
	value = strings.TrimSpace(s[idx+width:])
	// Aligned formats pad with dots and then add a colon
	// ("Registrar......: eNom"); drop the residual colon from the value.
	if strings.HasPrefix(value, ":") {
		value = strings.TrimSpace(value[1:])
	}
	if title == "" {
		return "", strings.TrimSpace(s), false
	}
	return title, value, true
}

func isSchemeColon(s string, i int) bool {
	if i+2 < len(s) && s[i+1] == '/' && s[i+2] == '/' {
		return true
	}
	return false
}

// Words splits text into lowercased alphanumeric words. Punctuation is
// discarded; words keep interior digits (so "2015" and "ns1" survive).
// Words are sliced out of text directly, so an already-lowercase word (the
// common case in WHOIS values) costs no allocation beyond the slice.
func Words(text string) []string {
	var out []string
	start := -1
	needLower := false
	flush := func(end int) {
		if start >= 0 {
			w := text[start:end]
			if needLower {
				w = strings.ToLower(w)
			}
			out = append(out, w)
			start = -1
			needLower = false
		}
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			if unicode.ToLower(r) != r {
				needLower = true
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	return out
}

// CountWords reports how many words Words would return without
// allocating the slice — the hot-path form for callers (the compiled
// template matcher) that only need the count.
func CountWords(text string) int {
	n := 0
	in := false
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if !in {
				n++
				in = true
			}
		} else {
			in = false
		}
	}
	return n
}

// HasAlnum reports whether s contains at least one letter or digit —
// the retention test Tokenize applies per line. Exported so alternate
// line iterators (the compiled template matcher) retain exactly the
// lines Tokenize would.
func HasAlnum(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

func hasAlnum(s string) bool { return HasAlnum(s) }

func leadingSpace(s string) int {
	n := 0
	for _, r := range s {
		switch r {
		case ' ':
			n++
		case '\t':
			n += 8
		default:
			return n
		}
	}
	return n
}

func startsWithSymbol(s string) bool {
	for _, r := range s {
		if unicode.IsSpace(r) {
			continue
		}
		switch r {
		case '#', '%', '*', '>', ';', '-', '[', '=':
			return true
		}
		return false
	}
	return false
}

// classes inspects the value side of a line and emits word-class
// observations.
func classes(value string) []string {
	var out []string
	add := func(c string) {
		for _, x := range out {
			if x == c {
				return
			}
		}
		out = append(out, c)
	}
	fields := strings.FieldsFunc(value, func(r rune) bool { return r == ' ' || r == ',' || r == ';' })
	for _, f := range fields {
		f = strings.Trim(f, "()[]")
		switch {
		case isFiveDigit(f):
			add(Cls5Digit)
			add(ClsNum)
		case isAllDigits(f):
			add(ClsNum)
			if len(f) == 4 && (strings.HasPrefix(f, "19") || strings.HasPrefix(f, "20")) {
				add(ClsYear)
			}
		case looksEmail(f):
			add(ClsEmail)
		case looksURL(f):
			add(ClsURL)
		// Order matters among the digit-heavy classes: a date like
		// 2015-02-27 and a dotted quad both pass the loose phone test.
		case looksDate(f):
			add(ClsDate)
		case looksIP(f):
			add(ClsIP)
		case looksPhone(f):
			add(ClsPhone)
		case len(f) >= 2 && isAllUpperLetters(f):
			add(ClsCaps)
		}
	}
	return out
}

func isFiveDigit(s string) bool { return len(s) == 5 && isAllDigits(s) }

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func isAllUpperLetters(s string) bool {
	for _, r := range s {
		if !unicode.IsUpper(r) {
			return false
		}
	}
	return len(s) > 0
}

func looksEmail(s string) bool {
	at := strings.IndexByte(s, '@')
	return at > 0 && at < len(s)-1 && strings.Contains(s[at:], ".")
}

func looksURL(s string) bool {
	ls := strings.ToLower(s)
	return strings.HasPrefix(ls, "http://") || strings.HasPrefix(ls, "https://") || strings.HasPrefix(ls, "www.")
}

// looksPhone accepts digit strings with separators and an optional leading
// '+', requiring at least 7 digits total.
func looksPhone(s string) bool {
	digits := 0
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '+' && i == 0:
		case r == '-' || r == '.' || r == '(' || r == ')' || r == ' ':
		default:
			return false
		}
	}
	return digits >= 7
}

// looksDate accepts common WHOIS date shapes: 2015-02-27, 27-feb-2015,
// 2015/02/27, 02/27/2015, and ISO timestamps.
func looksDate(s string) bool {
	s = strings.ToLower(s)
	if t := strings.IndexByte(s, 't'); t > 0 && strings.Count(s[:t], "-") == 2 {
		s = s[:t] // 2015-02-27t12:00:00z
	}
	seps := 0
	digits := 0
	letters := 0
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '-' || r == '/' || r == '.':
			seps++
		case r >= 'a' && r <= 'z':
			letters++
		default:
			return false
		}
	}
	if seps != 2 || digits < 4 {
		return false
	}
	return letters == 0 || letters == 3 // e.g. feb
}

// looksIP accepts dotted-quad IPv4 literals.
func looksIP(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if !isAllDigits(p) || len(p) > 3 {
			return false
		}
	}
	return true
}
