package tokenize

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Dictionary maps observation strings to dense integer ids. Following §3.3
// of the paper, it is compiled from the training set and trimmed of
// observations that appear fewer than MinCount times; marker and class
// observations (NL, SEP, CLS:* …) are always retained because they are
// drawn from a small closed set.
type Dictionary struct {
	ids    map[string]int
	names  []string
	counts []int
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]int)}
}

// BuildDictionary counts every observation in the given line sequences and
// retains those seen at least minCount times. minCount < 1 is treated as 1.
func BuildDictionary(records [][]Line, minCount int) *Dictionary {
	if minCount < 1 {
		minCount = 1
	}
	counts := make(map[string]int)
	for _, rec := range records {
		for _, ln := range rec {
			for _, o := range ln.Obs {
				counts[o]++
			}
		}
	}
	// Deterministic id assignment: sort observations.
	keys := make([]string, 0, len(counts))
	for k, c := range counts {
		if c >= minCount || isClosedClass(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	d := NewDictionary()
	for _, k := range keys {
		id := len(d.names)
		d.ids[k] = id
		d.names = append(d.names, k)
		d.counts = append(d.counts, counts[k])
	}
	return d
}

func isClosedClass(obs string) bool {
	switch obs {
	case MarkNL, MarkSHL, MarkSHR, MarkSYM, MarkSEP, MarkNoV, MarkBOL, MarkEOL:
		return true
	}
	return strings.HasPrefix(obs, "CLS:")
}

// Len reports the number of retained observations.
func (d *Dictionary) Len() int { return len(d.names) }

// ID returns the id of obs and whether it is in the dictionary.
func (d *Dictionary) ID(obs string) (int, bool) {
	id, ok := d.ids[obs]
	return id, ok
}

// Name returns the observation string for id. It panics on out-of-range
// ids, which always indicate a programming error.
func (d *Dictionary) Name(id int) string { return d.names[id] }

// Count returns the training-set frequency recorded for id.
func (d *Dictionary) Count(id int) int { return d.counts[id] }

// MapLine converts a line's observations to dictionary ids, dropping
// unknown observations (the CRF simply has no features for them).
func (d *Dictionary) MapLine(ln Line) []int {
	out := make([]int, 0, len(ln.Obs))
	for _, o := range ln.Obs {
		if id, ok := d.ids[o]; ok {
			out = append(out, id)
		}
	}
	return out
}

// WriteTo serializes the dictionary as "count\tname" lines.
func (d *Dictionary) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for i, name := range d.names {
		k, err := fmt.Fprintf(bw, "%d\t%s\n", d.counts[i], name)
		n += int64(k)
		if err != nil {
			return n, fmt.Errorf("tokenize: write dictionary: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("tokenize: flush dictionary: %w", err)
	}
	return n, nil
}

// ReadDictionary parses the format produced by WriteTo.
func ReadDictionary(r io.Reader) (*Dictionary, error) {
	d := NewDictionary()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		tab := strings.IndexByte(line, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("tokenize: dictionary line %d: missing tab", lineNo)
		}
		c, err := strconv.Atoi(line[:tab])
		if err != nil {
			return nil, fmt.Errorf("tokenize: dictionary line %d: bad count: %w", lineNo, err)
		}
		name := line[tab+1:]
		if _, dup := d.ids[name]; dup {
			return nil, fmt.Errorf("tokenize: dictionary line %d: duplicate entry %q", lineNo, name)
		}
		d.ids[name] = len(d.names)
		d.names = append(d.names, name)
		d.counts = append(d.counts, c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tokenize: read dictionary: %w", err)
	}
	return d, nil
}
