package tokenize

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize asserts the tokenizer's core invariants on arbitrary
// input: it never panics, retains exactly the alphanumeric lines, and
// produces well-formed observations.
func FuzzTokenize(f *testing.F) {
	f.Add("Domain Name: example.com\n\nRegistrant Name: John")
	f.Add("[Registrant] X\n% comment\n\ttab start")
	f.Add("a......: b\nc\td\nhttp://x.com")
	f.Add("")
	f.Add("\r\n\r\n::::\n日本語: テスト")
	f.Fuzz(func(t *testing.T, text string) {
		lines := Tokenize(text, Options{})

		want := 0
		for _, raw := range strings.Split(text, "\n") {
			raw = strings.TrimRight(raw, "\r")
			if containsAlnum(raw) {
				want++
			}
		}
		if len(lines) != want {
			t.Fatalf("retained %d lines, want %d", len(lines), want)
		}
		for _, ln := range lines {
			for _, o := range ln.Obs {
				if o == "" {
					t.Fatal("empty observation")
				}
			}
			if ln.HasSep && ln.Title == "" {
				t.Fatalf("separator without title in %q", ln.Raw)
			}
		}
	})
}

func containsAlnum(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

// FuzzSplitTitleValue asserts the splitter never loses non-space content.
func FuzzSplitTitleValue(f *testing.F) {
	f.Add("Registrant Name: John Smith")
	f.Add("Domain...: x")
	f.Add("[Key] value")
	f.Add("::::")
	f.Fuzz(func(t *testing.T, s string) {
		title, value, ok := SplitTitleValue(s)
		if ok && title == "" {
			t.Fatalf("ok with empty title on %q", s)
		}
		if !ok && title != "" {
			t.Fatalf("not-ok but title %q on %q", title, s)
		}
		_ = value
	})
}
