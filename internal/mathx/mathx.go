// Package mathx provides small numerically careful helpers used by the CRF
// training and inference code: log-sum-exp reductions, dot products, and
// vector arithmetic on dense float64 slices.
//
// All functions treat math.Inf(-1) as "log of zero" and preserve it through
// reductions, which lets callers encode impossible transitions directly in
// log-space score tables.
package mathx

import "math"

// NegInf is the log-domain representation of probability zero.
var NegInf = math.Inf(-1)

// LogSumExp returns log(exp(a) + exp(b)) computed without overflow.
func LogSumExp(a, b float64) float64 {
	if a == NegInf {
		return b
	}
	if b == NegInf {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogSumExpSlice returns log(sum_i exp(xs[i])). It returns NegInf for an
// empty slice, matching the convention that an empty sum has probability 0.
func LogSumExpSlice(xs []float64) float64 {
	if len(xs) == 0 {
		return NegInf
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if max == NegInf {
		return NegInf
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// Dot returns the inner product of a and b. The slices must have equal
// length; Dot panics otherwise, because a length mismatch is always a
// programming error in this codebase.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// AXPY computes dst[i] += alpha * x[i] in place.
func AXPY(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic("mathx: AXPY length mismatch")
	}
	for i, xi := range x {
		dst[i] += alpha * xi
	}
}

// DecayAXPY computes dst[i] = decay*dst[i] + alpha*x[i] in place — the
// fused multiplicative-weight-decay update used by SGD with L2.
func DecayAXPY(decay, alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic("mathx: DecayAXPY length mismatch")
	}
	for i, xi := range x {
		dst[i] = decay*dst[i] + alpha*xi
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, xi := range x {
		s += xi * xi
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute value in x, or 0 for an empty slice.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, xi := range x {
		if a := math.Abs(xi); a > m {
			m = a
		}
	}
	return m
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Clone returns a fresh copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// ArgMax returns the index of the largest element of x and its value.
// It returns (-1, NegInf) for an empty slice.
func ArgMax(x []float64) (int, float64) {
	if len(x) == 0 {
		return -1, NegInf
	}
	best, bestV := 0, x[0]
	for i, xi := range x[1:] {
		if xi > bestV {
			best, bestV = i+1, xi
		}
	}
	return best, bestV
}
