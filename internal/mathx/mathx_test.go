package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestLogSumExpBasic(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, math.Log(2)},
		{1, 1, 1 + math.Log(2)},
		{0, NegInf, 0},
		{NegInf, 0, 0},
		{NegInf, NegInf, NegInf},
		{1000, 1000, 1000 + math.Log(2)}, // no overflow
		{-1000, -1000, -1000 + math.Log(2)},
	}
	for _, c := range cases {
		if got := LogSumExp(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LogSumExp(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLogSumExpCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 700)
		b = math.Mod(b, 700)
		return almostEqual(LogSumExp(a, b), LogSumExp(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExpMonotone(t *testing.T) {
	// log(e^a + e^b) >= max(a, b), with equality only when the other
	// operand is -inf.
	f := func(a, b float64) bool {
		a = math.Mod(a, 700)
		b = math.Mod(b, 700)
		return LogSumExp(a, b) >= math.Max(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExpSliceMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		want := NegInf
		for _, x := range xs {
			want = LogSumExp(want, x)
		}
		if got := LogSumExpSlice(xs); !almostEqual(got, want, 1e-10) {
			t.Fatalf("trial %d: LogSumExpSlice=%v pairwise=%v xs=%v", trial, got, want, xs)
		}
	}
}

func TestLogSumExpSliceEmpty(t *testing.T) {
	if got := LogSumExpSlice(nil); !math.IsInf(got, -1) {
		t.Errorf("empty slice: got %v, want -Inf", got)
	}
}

func TestLogSumExpSliceAllNegInf(t *testing.T) {
	xs := []float64{NegInf, NegInf, NegInf}
	if got := LogSumExpSlice(xs); !math.IsInf(got, -1) {
		t.Errorf("all -inf: got %v, want -Inf", got)
	}
}

func TestLogSumExpSliceExactSmall(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	want := math.Log(6)
	if got := LogSumExpSlice(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("empty Dot = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAXPY(t *testing.T) {
	dst := []float64{1, 2, 3}
	AXPY(2, []float64{10, 20, 30}, dst)
	want := []float64{21, 42, 63}
	for i := range dst {
		if dst[i] != want[i] {
			t.Errorf("AXPY[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestScaleAndNorm(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	Scale(2, x)
	if x[0] != 6 || x[1] != 8 {
		t.Errorf("Scale: got %v", x)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{-7, 3, 5}); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %v, want 0", got)
	}
}

func TestFillAndClone(t *testing.T) {
	x := make([]float64, 3)
	Fill(x, 2.5)
	y := Clone(x)
	y[0] = 0
	if x[0] != 2.5 {
		t.Error("Clone aliases the input")
	}
	for _, v := range x {
		if v != 2.5 {
			t.Errorf("Fill left %v", v)
		}
	}
}

func TestArgMax(t *testing.T) {
	i, v := ArgMax([]float64{1, 9, 3, 9})
	if i != 1 || v != 9 {
		t.Errorf("ArgMax = (%d, %v), want (1, 9) — first max wins", i, v)
	}
	i, v = ArgMax(nil)
	if i != -1 || !math.IsInf(v, -1) {
		t.Errorf("ArgMax(nil) = (%d, %v)", i, v)
	}
}

func TestLogSumExpSliceAgainstDirect(t *testing.T) {
	// For small magnitudes, compare with the naive computation.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var direct float64
		for i, r := range raw {
			xs[i] = math.Mod(r, 10)
			direct += math.Exp(xs[i])
		}
		return almostEqual(LogSumExpSlice(xs), math.Log(direct), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecayAXPY(t *testing.T) {
	x := []float64{1, -2, 3}
	dst := []float64{10, 20, 30}
	DecayAXPY(0.5, 2, x, dst)
	want := []float64{7, 6, 21} // 0.5*dst + 2*x
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("DecayAXPY length mismatch did not panic")
		}
	}()
	DecayAXPY(1, 1, []float64{1}, []float64{1, 2})
}
