package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// The shard protocol is deliberately tiny — four operations cover
// routing, model distribution, coordinated swaps, and health:
//
//	Parse       ask the owning shard for a domain's parsed record
//	FetchModel  pull the serving WMDL artifact (join path)
//	ApplyModel  push a WMDL artifact and swap it live (rollout path)
//	Status      node identity, model version, generation, membership
//
// ShardClient is the caller's view, Backend the receiver's; both are
// transport-agnostic. InprocClient wires a client straight onto a
// Backend for tests and single-process clusters; DialTCP/ServeTCP speak
// the length-prefixed CRC32C wire format from codec.go.

// Protocol errors.
var (
	// ErrPeerOverloaded reports that the remote shard shed the request
	// (its admission queue was full). Carries a Retry-After hint via
	// OverloadedError; forwarders back off the peer and degrade to a
	// local parse rather than retrying in a tight loop.
	ErrPeerOverloaded = errors.New("cluster: peer overloaded")
	// ErrPeerDown reports that the peer is inside its failure-backoff
	// window and was not contacted at all.
	ErrPeerDown = errors.New("cluster: peer down (backing off)")
	// ErrNoModel reports that the node has no WMDL artifact to serve —
	// it was started from an in-memory model that never hit disk.
	ErrNoModel = errors.New("cluster: no model artifact available")
	// ErrNotReady reports that the node has not finished joining (its
	// model fetch has not been verified yet).
	ErrNotReady = errors.New("cluster: node not ready")
)

// OverloadedError is ErrPeerOverloaded plus the peer's jittered
// Retry-After hint. errors.Is(err, ErrPeerOverloaded) matches it.
type OverloadedError struct {
	// After is how long the peer asks us to stay away. Already
	// jittered at the peer, so a fleet of forwarders that all hit the
	// same overloaded shard spreads its retries instead of
	// re-converging on the same instant.
	After time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("cluster: peer overloaded, retry after %s", e.After)
}

// Is makes errors.Is(err, ErrPeerOverloaded) true for OverloadedError.
func (e *OverloadedError) Is(target error) bool { return target == ErrPeerOverloaded }

// PeerStatus is one node's self-description, returned by the Status
// operation and aggregated by /admin/cluster.
type PeerStatus struct {
	// ID is the node's stable ring identity.
	ID string `json:"id"`
	// Addr is the advertised shard-protocol address ("" in-process).
	Addr string `json:"addr,omitempty"`
	// ModelVersion is the version stamp of the serving model ("" when
	// unversioned).
	ModelVersion string `json:"model_version,omitempty"`
	// Generation is the node's serving-cache generation — it bumps on
	// every model swap or invalidation, so a rollout is observable as a
	// staggered wave of generation bumps across the fleet.
	Generation uint64 `json:"generation"`
	// Ready reports whether the node is admitting traffic (a joining
	// node is not ready until its fetched model verifies).
	Ready bool `json:"ready"`
	// Members is the node's view of the ring membership.
	Members []string `json:"members,omitempty"`
}

// ShardClient is the transport-agnostic view of one peer shard. All
// methods honor ctx cancellation/deadlines. Implementations must be
// safe for concurrent use.
type ShardClient interface {
	// Parse asks the peer to serve domain's parsed record (through its
	// own cache/coalescing stack). Overload surfaces as
	// ErrPeerOverloaded (an *OverloadedError with a Retry-After hint).
	Parse(ctx context.Context, domain, text string) (*core.ParsedRecord, error)
	// FetchModel returns the peer's serving WMDL artifact bytes. The
	// caller must verify them (store.ReadModel checks the CRC32C)
	// before serving — the join path depends on it.
	FetchModel(ctx context.Context) ([]byte, error)
	// ApplyModel pushes a WMDL artifact to the peer, which verifies
	// and hot-swaps it, returning the new model version. The rollout
	// path: each ApplyModel bumps that peer's cache generation.
	ApplyModel(ctx context.Context, artifact []byte) (string, error)
	// Status returns the peer's self-description.
	Status(ctx context.Context) (PeerStatus, error)
	// Close releases transport resources.
	Close() error
}

// Backend is the receiving side of the shard protocol — what a
// transport server dispatches into. *Node implements it.
type Backend interface {
	// HandleParse serves a parse on behalf of a peer.
	HandleParse(ctx context.Context, domain, text string) (*core.ParsedRecord, error)
	// ModelArtifact returns the serving WMDL bytes, or ErrNoModel.
	ModelArtifact() ([]byte, error)
	// ApplyModel verifies artifact and swaps it live, returning the
	// new model version.
	ApplyModel(artifact []byte) (string, error)
	// Status returns the node's self-description.
	Status() PeerStatus
}

// InprocClient adapts a Backend into a ShardClient with direct calls —
// the in-process transport used by tests and single-process multi-node
// setups. The zero cost of the transport is also what the
// BenchmarkShardForward figure isolates: forward overhead without wire
// time.
type InprocClient struct {
	B Backend
}

// Parse implements ShardClient.
func (c *InprocClient) Parse(ctx context.Context, domain, text string) (*core.ParsedRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.B.HandleParse(ctx, domain, text)
}

// FetchModel implements ShardClient.
func (c *InprocClient) FetchModel(ctx context.Context) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.B.ModelArtifact()
}

// ApplyModel implements ShardClient.
func (c *InprocClient) ApplyModel(ctx context.Context, artifact []byte) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return c.B.ApplyModel(artifact)
}

// Status implements ShardClient.
func (c *InprocClient) Status(ctx context.Context) (PeerStatus, error) {
	if err := ctx.Err(); err != nil {
		return PeerStatus{}, err
	}
	return c.B.Status(), nil
}

// Close implements ShardClient.
func (c *InprocClient) Close() error { return nil }
