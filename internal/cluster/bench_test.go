package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"
)

// BenchmarkRingLookup is the routing hot path: one hash plus one binary
// search over an immutable state — the acceptance bar is <200ns/op.
func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(RingOptions{})
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		r.Add(id)
	}
	domains := make([]string, 1024)
	for i := range domains {
		domains[i] = fmt.Sprintf("domain%d.com", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Lookup(domains[i&1023]) == "" {
			b.Fatal("no owner")
		}
	}
}

// BenchmarkRingLookupBounded adds the bounded-load check (load reads
// across members) on top of the plain lookup.
func BenchmarkRingLookupBounded(b *testing.B) {
	r := NewRing(RingOptions{LoadFactor: 1.25})
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		r.Add(id)
	}
	domains := make([]string, 1024)
	for i := range domains {
		domains[i] = fmt.Sprintf("domain%d.com", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.LookupBounded(domains[i&1023]) == "" {
			b.Fatal("no owner")
		}
	}
}

// BenchmarkShardForward measures the full forward path overhead with
// the wire taken out (in-process transport, remote-result cache
// disabled): key hash, singleflight bookkeeping, the peer's serving
// stack (cache hit), and the response hand-back.
func BenchmarkShardForward(b *testing.B) {
	a := testNode(b, "node-a", echoParse("node-a"), Options{RemoteCache: -1})
	o := testNode(b, "node-b", echoParse("node-b"), Options{})
	link(a, o)
	d := domainOwnedBy(b, a.Ring(), "node-b")
	text := "whois " + d
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ParseDomain(ctx, d, text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardForwardRemoteHit is the steady-state path for repeated
// non-owned domains: the forward resolves in the local remote-result
// LRU without touching the peer.
func BenchmarkShardForwardRemoteHit(b *testing.B) {
	a := testNode(b, "node-a", echoParse("node-a"), Options{})
	o := testNode(b, "node-b", echoParse("node-b"), Options{})
	link(a, o)
	d := domainOwnedBy(b, a.Ring(), "node-b")
	text := "whois " + d
	ctx := context.Background()
	if _, err := a.ParseDomain(ctx, d, text); err != nil { // prime
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ParseDomain(ctx, d, text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardForwardTCP is BenchmarkShardForward over a loopback TCP
// connection: adds framing, CRC, and kernel round trips.
func BenchmarkShardForwardTCP(b *testing.B) {
	a := testNode(b, "node-a", echoParse("node-a"), Options{RemoteCache: -1})
	o := testNode(b, "node-b", echoParse("node-b"), Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := ServeTCP(ln, o, nil)
	defer srv.Close()
	a.AddPeer("node-b", DialTCP(srv.Addr()))
	d := domainOwnedBy(b, a.Ring(), "node-b")
	text := "whois " + d
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ParseDomain(ctx, d, text); err != nil {
			b.Fatal(err)
		}
	}
}
