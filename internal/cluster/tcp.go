package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TCP transport: one frame out, one frame back, connections reused
// across requests. The server keeps a connection open until the client
// closes it or it idles out; the client keeps a small pool of idle
// connections and discards any connection that sees an error, so a
// half-dead peer never poisons later requests.

const (
	// tcpIdleTimeout is how long a server-side connection may sit
	// between requests before the server hangs up.
	tcpIdleTimeout = 2 * time.Minute
	// tcpIOTimeout bounds a single frame read/write once a request has
	// started — large ApplyModel frames included.
	tcpIOTimeout = 30 * time.Second
	// tcpDialTimeout bounds connection establishment when the caller's
	// context carries no deadline.
	tcpDialTimeout = 5 * time.Second
	// tcpMaxIdleConns caps the client's idle pool.
	tcpMaxIdleConns = 4
)

// TCPServer serves the shard protocol on a listener, dispatching into a
// Backend. Create with ServeTCP; Close stops accepting and closes live
// connections.
type TCPServer struct {
	b   Backend
	ln  net.Listener
	log *obs.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeTCP starts serving b on ln in the background. log may be nil.
func ServeTCP(ln net.Listener, b Backend, log *obs.Logger) *TCPServer {
	if log == nil {
		log = obs.NewLogger("cluster", io.Discard)
	}
	s := &TCPServer{b: b, ln: ln, log: log, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	var inBuf, outBuf []byte
	for {
		_ = conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout))
		req, buf, err := readFrame(br, inBuf)
		inBuf = buf
		if err != nil {
			return // EOF, idle timeout, or garbage — hang up either way
		}
		_ = conn.SetDeadline(time.Now().Add(tcpIOTimeout))
		outBuf = s.dispatch(outBuf, req)
		if err := writeFrame(bw, outBuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch runs one decoded request against the backend and encodes the
// response into buf.
func (s *TCPServer) dispatch(buf, req []byte) []byte {
	if len(req) == 0 {
		return encodeErrorResp(buf, fmt.Errorf("%w: empty request", ErrBadMessage))
	}
	op, body := req[0], req[1:]
	switch op {
	case opParse:
		domain, text, err := decodeParseReq(body)
		if err != nil {
			return encodeErrorResp(buf, err)
		}
		rec, err := s.b.HandleParse(context.Background(), domain, text)
		if err != nil {
			return encodeErrorResp(buf, err)
		}
		return encodeRecordResp(buf, domain, rec)
	case opFetchModel:
		data, err := s.b.ModelArtifact()
		if err != nil {
			return encodeErrorResp(buf, err)
		}
		return appendBytes(append(buf[:0], stOK), data)
	case opApplyModel:
		r := &wireReader{b: body}
		artifact := r.bytes()
		if r.bad || r.pos != len(body) {
			return encodeErrorResp(buf, fmt.Errorf("%w: apply request", ErrBadMessage))
		}
		// The artifact slice aliases the connection's read buffer,
		// which the next request will overwrite — the backend keeps it,
		// so copy.
		version, err := s.b.ApplyModel(append([]byte(nil), artifact...))
		if err != nil {
			return encodeErrorResp(buf, err)
		}
		return appendString(append(buf[:0], stOK), version)
	case opStatus:
		return encodeStatusResp(buf, s.b.Status())
	default:
		return encodeErrorResp(buf, fmt.Errorf("%w: %d", ErrUnknownOp, op))
	}
}

// Close stops the server: the listener closes, live connections are
// torn down, and all handler goroutines drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPClient is a ShardClient over the wire format, with a small idle
// connection pool. Safe for concurrent use; connections that error are
// discarded, so a request never inherits a poisoned stream.
type TCPClient struct {
	addr string

	mu     sync.Mutex
	idle   []*tcpConn
	closed bool
}

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	// buf is the reusable frame read buffer.
	buf []byte
}

// DialTCP returns a lazy client for the shard server at addr — no
// connection is made until the first call.
func DialTCP(addr string) *TCPClient {
	return &TCPClient{addr: addr}
}

func (c *TCPClient) get(ctx context.Context) (*tcpConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: client closed")
	}
	if n := len(c.idle); n > 0 {
		tc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return tc, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: tcpDialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", c.addr, err)
	}
	return &tcpConn{
		c:  conn,
		br: bufio.NewReaderSize(conn, 1<<16),
		bw: bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

func (c *TCPClient) put(tc *tcpConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < tcpMaxIdleConns {
		c.idle = append(c.idle, tc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	tc.c.Close()
}

// call performs one request/response round trip. The returned payload
// is a copy owned by the caller.
func (c *TCPClient) call(ctx context.Context, req []byte) ([]byte, error) {
	tc, err := c.get(ctx)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(tcpIOTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = tc.c.SetDeadline(deadline)
	if err := writeFrame(tc.bw, req); err != nil {
		tc.c.Close()
		return nil, fmt.Errorf("cluster: write %s: %w", c.addr, err)
	}
	if err := tc.bw.Flush(); err != nil {
		tc.c.Close()
		return nil, fmt.Errorf("cluster: write %s: %w", c.addr, err)
	}
	payload, buf, err := readFrame(tc.br, tc.buf)
	tc.buf = buf
	if err != nil {
		tc.c.Close()
		return nil, fmt.Errorf("cluster: read %s: %w", c.addr, err)
	}
	out := append([]byte(nil), payload...)
	c.put(tc)
	return out, nil
}

// Parse implements ShardClient.
func (c *TCPClient) Parse(ctx context.Context, domain, text string) (*core.ParsedRecord, error) {
	resp, err := c.call(ctx, encodeParseReq(nil, domain, text))
	if err != nil {
		return nil, err
	}
	body, err := decodeStatusByte(resp)
	if err != nil {
		return nil, err
	}
	return decodeRecordResp(body)
}

// FetchModel implements ShardClient.
func (c *TCPClient) FetchModel(ctx context.Context) ([]byte, error) {
	resp, err := c.call(ctx, []byte{opFetchModel})
	if err != nil {
		return nil, err
	}
	body, err := decodeStatusByte(resp)
	if err != nil {
		return nil, err
	}
	r := &wireReader{b: body}
	data := r.bytes()
	if r.bad || r.pos != len(body) {
		return nil, fmt.Errorf("%w: fetch response", ErrBadMessage)
	}
	return append([]byte(nil), data...), nil
}

// ApplyModel implements ShardClient.
func (c *TCPClient) ApplyModel(ctx context.Context, artifact []byte) (string, error) {
	req := appendBytes([]byte{opApplyModel}, artifact)
	resp, err := c.call(ctx, req)
	if err != nil {
		return "", err
	}
	body, err := decodeStatusByte(resp)
	if err != nil {
		return "", err
	}
	r := &wireReader{b: body}
	version := r.str()
	if r.bad || r.pos != len(body) {
		return "", fmt.Errorf("%w: apply response", ErrBadMessage)
	}
	return version, nil
}

// Status implements ShardClient.
func (c *TCPClient) Status(ctx context.Context) (PeerStatus, error) {
	resp, err := c.call(ctx, []byte{opStatus})
	if err != nil {
		return PeerStatus{}, err
	}
	body, err := decodeStatusByte(resp)
	if err != nil {
		return PeerStatus{}, err
	}
	return decodeStatusResp(body)
}

// Close implements ShardClient: idle connections are closed; in-flight
// calls finish on their own connections.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, tc := range c.idle {
		tc.c.Close()
	}
	c.idle = nil
	return nil
}
