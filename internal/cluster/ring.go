// Package cluster turns N independent rdapd/whoisd processes into one
// consistent serving fleet. The paper parses the full .com zone — 102M
// records (§6) — by fanning work across machines; this package supplies
// the coordination that fan-out needs once the machines also *serve*:
//
//   - a consistent-hash ring (virtual nodes, bounded-load variant) that
//     assigns every domain to exactly one owning shard, so each record
//     is hot in exactly one cache instead of N;
//   - a transport-agnostic shard protocol (ShardClient/Backend) with an
//     in-process implementation for tests and a length-prefixed,
//     CRC32C-framed TCP implementation for production, the same framing
//     discipline as internal/store's record log;
//   - peer-aware cache lookup: a non-owning node forwards to the owner
//     before cold-parsing, with singleflight on the forward path, a
//     generation-keyed remote-result LRU, and per-peer timeout/backoff
//     so one slow peer degrades to local parsing instead of stalling
//     the ring;
//   - model-artifact distribution: a joining node fetches the serving
//     WMDL from a peer and verifies its CRC32C before admitting
//     traffic;
//   - cluster-coordinated hot swaps: a promotion rolls across the ring
//     with staggered per-node cache invalidation, so a fleet-wide model
//     change never produces a thundering herd of simultaneous misses.
//
// See DESIGN.md §5g for the ring layout, the wire format, and the
// rollout policy.
package cluster

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// RingOptions tunes the consistent-hash ring. The zero value picks sane
// defaults.
type RingOptions struct {
	// Replicas is the number of virtual nodes per member; more vnodes
	// smooth the ownership distribution at the cost of a larger (still
	// binary-searched) table. <= 0 means 128.
	Replicas int
	// LoadFactor is the bounded-load factor c: LookupBounded refuses to
	// route a key to a member carrying more than ceil(c * (total+1) /
	// members) in-flight requests and walks to the next distinct member
	// instead (Mirrokni et al.'s "consistent hashing with bounded
	// loads"). <= 1 disables bounding; 0 means 1.25.
	LoadFactor float64
}

func (o RingOptions) withDefaults() RingOptions {
	if o.Replicas <= 0 {
		o.Replicas = 128
	}
	if o.LoadFactor == 0 {
		o.LoadFactor = 1.25
	}
	return o
}

// ringState is one immutable generation of the ring: sorted vnode
// hashes, the member owning each vnode, and the sorted member list.
// Membership changes build a fresh state and publish it with one atomic
// store, so Lookup never takes a lock.
type ringState struct {
	hashes  []uint64 // sorted vnode positions
	owner   []int32  // hashes[i] belongs to ids[owner[i]]
	ids     []string // sorted member ids
	version uint64   // bumped per rebuild
}

// Ring is a consistent-hash ring with virtual nodes and an optional
// bounded-load lookup. Lookups are lock-free reads of an atomic state
// pointer; membership changes (Add/Remove) serialize on a mutex and
// rebuild.
type Ring struct {
	opts  RingOptions
	state atomic.Pointer[ringState]

	mu    sync.Mutex // membership changes
	loads sync.Map   // member id -> *atomic.Int64 in-flight count
}

// NewRing builds an empty ring.
func NewRing(opts RingOptions) *Ring {
	r := &Ring{opts: opts.withDefaults()}
	r.state.Store(&ringState{})
	return r
}

// FNV-1a 64 with ASCII case folding: domains are case-insensitive, so
// EXAMPLE.COM and example.com must land on the same shard.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashDomain(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// vnodeHash positions one virtual node. The replica index is mixed in
// through the string form ("id#17") so vnode positions are stable across
// processes — every member computes the same ring from the same ids.
func vnodeHash(id string, replica int) uint64 {
	return hashDomain(id + "#" + strconv.Itoa(replica))
}

// Add inserts a member and rebuilds the ring. Adding an existing member
// is a no-op (false).
func (r *Ring) Add(id string) bool {
	if id == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.state.Load()
	for _, have := range cur.ids {
		if have == id {
			return false
		}
	}
	ids := make([]string, 0, len(cur.ids)+1)
	ids = append(ids, cur.ids...)
	ids = append(ids, id)
	r.loads.LoadOrStore(id, new(atomic.Int64))
	r.rebuild(cur, ids)
	return true
}

// Remove deletes a member and rebuilds the ring. Removing an absent
// member is a no-op (false).
func (r *Ring) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.state.Load()
	ids := make([]string, 0, len(cur.ids))
	found := false
	for _, have := range cur.ids {
		if have == id {
			found = true
			continue
		}
		ids = append(ids, have)
	}
	if !found {
		return false
	}
	r.loads.Delete(id)
	r.rebuild(cur, ids)
	return true
}

// rebuild publishes a new state for ids. Callers hold r.mu.
func (r *Ring) rebuild(cur *ringState, ids []string) {
	sort.Strings(ids)
	n := len(ids) * r.opts.Replicas
	st := &ringState{
		hashes:  make([]uint64, n),
		owner:   make([]int32, n),
		ids:     ids,
		version: cur.version + 1,
	}
	type vnode struct {
		h     uint64
		owner int32
	}
	vns := make([]vnode, 0, n)
	for oi, id := range ids {
		for rep := 0; rep < r.opts.Replicas; rep++ {
			vns = append(vns, vnode{vnodeHash(id, rep), int32(oi)})
		}
	}
	sort.Slice(vns, func(i, j int) bool { return vns[i].h < vns[j].h })
	for i, v := range vns {
		st.hashes[i] = v.h
		st.owner[i] = v.owner
	}
	r.state.Store(st)
}

// Members returns the sorted member ids.
func (r *Ring) Members() []string {
	st := r.state.Load()
	out := make([]string, len(st.ids))
	copy(out, st.ids)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.state.Load().ids) }

// Version returns the rebuild counter — it changes exactly when
// membership does, so callers can detect rebalances cheaply.
func (r *Ring) Version() uint64 { return r.state.Load().version }

// Lookup returns the member owning domain: the owner of the first vnode
// clockwise of the domain's hash. Empty string on an empty ring.
// Lock-free and allocation-free — one hash, one binary search.
func (r *Ring) Lookup(domain string) string {
	st := r.state.Load()
	if len(st.hashes) == 0 {
		return ""
	}
	return st.ids[st.owner[r.search(st, hashDomain(domain))]]
}

// search finds the vnode slot owning hash h (first slot with
// hashes[i] >= h, wrapping to 0).
func (r *Ring) search(st *ringState, h uint64) int {
	// Hand-rolled binary search: sort.Search's closure costs an
	// indirect call per probe, measurable at the <200ns/op budget.
	lo, hi := 0, len(st.hashes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.hashes[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(st.hashes) {
		return 0
	}
	return lo
}

// LookupBounded is Lookup with the bounded-load rule: if the primary
// owner is already carrying more than ceil(c*(total+1)/members)
// in-flight requests (as tracked by Acquire/Release), the key walks
// clockwise to the next distinct member under the cap. With every
// member at or over the cap it falls back to the primary owner, so the
// answer is always a current member.
func (r *Ring) LookupBounded(domain string) string {
	st := r.state.Load()
	if len(st.hashes) == 0 {
		return ""
	}
	start := r.search(st, hashDomain(domain))
	primary := st.ids[st.owner[start]]
	if r.opts.LoadFactor <= 1 || len(st.ids) == 1 {
		return primary
	}
	limit := r.loadCap(st)
	if r.load(primary) < limit {
		return primary
	}
	seen := int32(st.owner[start])
	for i := 1; i < len(st.hashes); i++ {
		o := st.owner[(start+i)%len(st.hashes)]
		if o == seen {
			continue
		}
		id := st.ids[o]
		if r.load(id) < limit {
			return id
		}
		seen = o // skip immediate repeats; rare collisions just recheck
	}
	return primary
}

// loadCap computes the bounded-load ceiling for the current state.
func (r *Ring) loadCap(st *ringState) int64 {
	var total int64
	for _, id := range st.ids {
		total += r.load(id)
	}
	return int64(math.Ceil(r.opts.LoadFactor * float64(total+1) / float64(len(st.ids))))
}

func (r *Ring) loadCounter(id string) *atomic.Int64 {
	if v, ok := r.loads.Load(id); ok {
		return v.(*atomic.Int64)
	}
	v, _ := r.loads.LoadOrStore(id, new(atomic.Int64))
	return v.(*atomic.Int64)
}

func (r *Ring) load(id string) int64 { return r.loadCounter(id).Load() }

// Acquire records one in-flight request against a member; pair with
// Release. The counters feed LookupBounded only — forgetting them makes
// bounding a no-op, never a correctness problem.
func (r *Ring) Acquire(id string) { r.loadCounter(id).Add(1) }

// Release ends an Acquire.
func (r *Ring) Release(id string) { r.loadCounter(id).Add(-1) }

// Ownership returns each member's fraction of the hash space — the
// per-shard ownership figure exported as a metric and shown by
// /admin/cluster. Fractions sum to 1 on a non-empty ring.
func (r *Ring) Ownership() map[string]float64 {
	st := r.state.Load()
	out := make(map[string]float64, len(st.ids))
	if len(st.hashes) == 0 {
		return out
	}
	// The arc owned by vnode i is (hashes[i-1], hashes[i]]; the first
	// vnode also owns the wraparound arc.
	const width = float64(1<<63) * 2 // 2^64
	for i := range st.hashes {
		var arc uint64
		if i == 0 {
			arc = st.hashes[0] + (^st.hashes[len(st.hashes)-1] + 1)
		} else {
			arc = st.hashes[i] - st.hashes[i-1]
		}
		out[st.ids[st.owner[i]]] += float64(arc) / width
	}
	return out
}
