package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// Wire format (DESIGN.md §5g). Every message — request or response —
// travels in the same envelope internal/store frames its record log
// with:
//
//	frame := uvarint(len(payload)) | payload | crc32c(payload) LE32
//
// The CRC is Castagnoli. A request payload is an op byte followed by
// op-specific fields (uvarint-length-prefixed strings/bytes); a
// response payload is a status byte followed by status-specific fields.
// Parsed records reuse the store's bounds-checked record codec
// (store.EncodeRecord/DecodeRecord), so the shard protocol and the
// persistence layer cannot drift apart on what a record is.
//
//	opParse      : domain string | text string
//	opFetchModel : (empty)
//	opApplyModel : artifact bytes
//	opStatus     : (empty)
//
//	stOK         : op-specific body (record payload / artifact bytes /
//	               version string / status fields)
//	stError      : message string
//	stOverloaded : retry-after millis uvarint
//	stNoModel    : (empty)

const (
	opParse      = 1
	opFetchModel = 2
	opApplyModel = 3
	opStatus     = 4

	stOK         = 0
	stError      = 1
	stOverloaded = 2
	stNoModel    = 3
)

// maxWireFrame bounds one protocol frame. Model artifacts are the
// largest payloads (tens of MB for a full-corpus model); parse
// requests/responses are KBs.
const maxWireFrame = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Wire errors.
var (
	ErrTornWire   = errors.New("cluster: torn wire frame")
	ErrBadWireCRC = errors.New("cluster: wire frame checksum mismatch")
	ErrWireTooBig = errors.New("cluster: wire frame exceeds size limit")
	ErrBadMessage = errors.New("cluster: malformed protocol message")
	ErrRemote     = errors.New("cluster: remote error")
	ErrUnknownOp  = errors.New("cluster: unknown protocol op")
)

// writeFrame writes one framed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(crc[:])
	return err
}

// readFrame reads one framed payload into buf (grown as needed) and
// returns the payload slice, valid until the next call with the same
// buf.
func readFrame(r *bufio.Reader, buf []byte) ([]byte, []byte, error) {
	var n uint64
	for shift := uint(0); ; shift += 7 {
		c, err := r.ReadByte()
		if err != nil {
			if shift == 0 && err == io.EOF {
				return nil, buf, io.EOF
			}
			return nil, buf, ErrTornWire
		}
		n |= uint64(c&0x7f) << shift
		if c < 0x80 {
			break
		}
		if shift >= 28 {
			return nil, buf, ErrTornWire
		}
	}
	if n > maxWireFrame {
		return nil, buf, fmt.Errorf("%w: %d bytes", ErrWireTooBig, n)
	}
	need := int(n) + 4
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	b := buf[:need]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, buf, ErrTornWire
	}
	payload := b[:n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[n:]) {
		return nil, buf, ErrBadWireCRC
	}
	return payload, buf, nil
}

// appendString length-prefixes s onto buf.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendBytes length-prefixes b onto buf.
func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// wireReader is a bounds-checked cursor over a payload, mirroring the
// store decoder's discipline: reads report failure instead of
// panicking.
type wireReader struct {
	b   []byte
	pos int
	bad bool
}

func (r *wireReader) byte() byte {
	if r.bad || r.pos >= len(r.b) {
		r.bad = true
		return 0
	}
	c := r.b[r.pos]
	r.pos++
	return c
}

func (r *wireReader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) bytes() []byte {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.b)-r.pos) {
		r.bad = true
		return nil
	}
	b := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

func (r *wireReader) str() string { return string(r.bytes()) }

// Request encoders/decoders.

func encodeParseReq(buf []byte, domain, text string) []byte {
	buf = append(buf[:0], opParse)
	buf = appendString(buf, domain)
	return appendString(buf, text)
}

func decodeParseReq(body []byte) (domain, text string, err error) {
	r := &wireReader{b: body}
	domain = r.str()
	text = r.str()
	if r.bad || r.pos != len(body) {
		return "", "", fmt.Errorf("%w: parse request", ErrBadMessage)
	}
	return domain, text, nil
}

// Response encoders/decoders.

// encodeRecordResp wraps a parsed record as an stOK response, reusing
// the store record codec for the record body.
func encodeRecordResp(buf []byte, domain string, rec *core.ParsedRecord) []byte {
	buf = append(buf[:0], stOK)
	body := store.EncodeRecord(nil, &store.Record{Domain: domain, Parsed: rec})
	return appendBytes(buf, body)
}

func decodeRecordResp(body []byte) (*core.ParsedRecord, error) {
	r := &wireReader{b: body}
	payload := r.bytes()
	if r.bad || r.pos != len(body) {
		return nil, fmt.Errorf("%w: record response", ErrBadMessage)
	}
	rec, err := store.DecodeRecord(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if rec.Parsed == nil {
		return nil, fmt.Errorf("%w: record response without parse", ErrBadMessage)
	}
	return rec.Parsed, nil
}

// encodeErrorResp maps an error into a status frame: overload carries
// its Retry-After hint, ErrNoModel its own status, anything else a
// message string.
func encodeErrorResp(buf []byte, err error) []byte {
	var ov *OverloadedError
	switch {
	case errors.As(err, &ov):
		buf = append(buf[:0], stOverloaded)
		return binary.AppendUvarint(buf, uint64(ov.After.Milliseconds()))
	case errors.Is(err, ErrNoModel):
		return append(buf[:0], stNoModel)
	default:
		buf = append(buf[:0], stError)
		return appendString(buf, err.Error())
	}
}

// decodeStatusByte interprets a response's status byte, returning the
// remaining body for stOK and the decoded error otherwise.
func decodeStatusByte(payload []byte) ([]byte, error) {
	r := &wireReader{b: payload}
	switch st := r.byte(); {
	case r.bad:
		return nil, fmt.Errorf("%w: empty response", ErrBadMessage)
	case st == stOK:
		return payload[r.pos:], nil
	case st == stOverloaded:
		ms := r.uvarint()
		if r.bad {
			return nil, fmt.Errorf("%w: overload response", ErrBadMessage)
		}
		return nil, &OverloadedError{After: time.Duration(ms) * time.Millisecond}
	case st == stNoModel:
		return nil, ErrNoModel
	case st == stError:
		msg := r.str()
		if r.bad {
			return nil, fmt.Errorf("%w: error response", ErrBadMessage)
		}
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	default:
		return nil, fmt.Errorf("%w: status %d", ErrBadMessage, st)
	}
}

// Status op body.

func encodeStatusResp(buf []byte, ps PeerStatus) []byte {
	buf = append(buf[:0], stOK)
	buf = appendString(buf, ps.ID)
	buf = appendString(buf, ps.Addr)
	buf = appendString(buf, ps.ModelVersion)
	buf = binary.AppendUvarint(buf, ps.Generation)
	ready := byte(0)
	if ps.Ready {
		ready = 1
	}
	buf = append(buf, ready)
	buf = binary.AppendUvarint(buf, uint64(len(ps.Members)))
	for _, m := range ps.Members {
		buf = appendString(buf, m)
	}
	return buf
}

func decodeStatusResp(body []byte) (PeerStatus, error) {
	r := &wireReader{b: body}
	var ps PeerStatus
	ps.ID = r.str()
	ps.Addr = r.str()
	ps.ModelVersion = r.str()
	ps.Generation = r.uvarint()
	ps.Ready = r.byte() == 1
	n := r.uvarint()
	if r.bad || n > uint64(len(body)) {
		return PeerStatus{}, fmt.Errorf("%w: status response", ErrBadMessage)
	}
	ps.Members = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		ps.Members = append(ps.Members, r.str())
	}
	if r.bad || r.pos != len(body) {
		return PeerStatus{}, fmt.Errorf("%w: status response", ErrBadMessage)
	}
	return ps, nil
}
