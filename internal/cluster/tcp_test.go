package cluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeBackend is a scriptable Backend for transport tests.
type fakeBackend struct {
	mu       sync.Mutex
	parseErr error
	applied  [][]byte
	artifact []byte
	parses   int
}

func (f *fakeBackend) HandleParse(ctx context.Context, domain, text string) (*core.ParsedRecord, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.parses++
	if f.parseErr != nil {
		return nil, f.parseErr
	}
	return &core.ParsedRecord{DomainName: domain, Registrar: "fake", ModelVersion: "v-fake"}, nil
}

func (f *fakeBackend) ModelArtifact() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.artifact == nil {
		return nil, ErrNoModel
	}
	return f.artifact, nil
}

func (f *fakeBackend) ApplyModel(artifact []byte) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applied = append(f.applied, artifact)
	return "v-applied", nil
}

func (f *fakeBackend) Status() PeerStatus {
	return PeerStatus{ID: "fake-node", Generation: 7, Ready: true, Members: []string{"fake-node"}}
}

func startTCP(t *testing.T, b Backend) (*TCPServer, *TCPClient) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, b, nil)
	t.Cleanup(func() { srv.Close() })
	cli := DialTCP(srv.Addr())
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestTCPParseRoundTrip(t *testing.T) {
	fb := &fakeBackend{}
	_, cli := startTCP(t, fb)
	ctx := context.Background()
	rec, err := cli.Parse(ctx, "example.com", "Domain Name: EXAMPLE.COM\n")
	if err != nil {
		t.Fatal(err)
	}
	if rec.DomainName != "example.com" || rec.Registrar != "fake" || rec.ModelVersion != "v-fake" {
		t.Fatalf("record mangled in transit: %+v", rec)
	}
	// Connection reuse: a second call on the pooled connection.
	if _, err := cli.Parse(ctx, "other.com", "text"); err != nil {
		t.Fatal(err)
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.parses != 2 {
		t.Fatalf("backend saw %d parses, want 2", fb.parses)
	}
}

func TestTCPErrorMapping(t *testing.T) {
	fb := &fakeBackend{parseErr: &OverloadedError{After: 250 * time.Millisecond}}
	_, cli := startTCP(t, fb)
	ctx := context.Background()

	_, err := cli.Parse(ctx, "example.com", "text")
	var ov *OverloadedError
	if !errors.As(err, &ov) || ov.After != 250*time.Millisecond {
		t.Fatalf("overload did not survive the wire: %v", err)
	}

	if _, err := cli.FetchModel(ctx); !errors.Is(err, ErrNoModel) {
		t.Fatalf("FetchModel err = %v, want ErrNoModel", err)
	}

	fb.mu.Lock()
	fb.parseErr = errors.New("synthetic backend failure")
	fb.mu.Unlock()
	if _, err := cli.Parse(ctx, "example.com", "text"); !errors.Is(err, ErrRemote) {
		t.Fatalf("generic error not mapped to ErrRemote: %v", err)
	}
}

func TestTCPFetchAndApplyModel(t *testing.T) {
	artifact := bytes.Repeat([]byte{0xAB, 0xCD}, 4096)
	fb := &fakeBackend{artifact: artifact}
	_, cli := startTCP(t, fb)
	ctx := context.Background()

	got, err := cli.FetchModel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, artifact) {
		t.Fatal("fetched artifact differs from served artifact")
	}

	version, err := cli.ApplyModel(ctx, artifact)
	if err != nil {
		t.Fatal(err)
	}
	if version != "v-applied" {
		t.Fatalf("version = %q", version)
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if len(fb.applied) != 1 || !bytes.Equal(fb.applied[0], artifact) {
		t.Fatal("applied artifact differs")
	}
	// The server must have copied the artifact out of its read buffer:
	// mutate the slice the client sent and recheck the stored one.
	artifact[0] ^= 0xFF
	if fb.applied[0][0] == artifact[0] {
		t.Fatal("server aliases the connection read buffer")
	}
}

func TestTCPStatus(t *testing.T) {
	_, cli := startTCP(t, &fakeBackend{})
	st, err := cli.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "fake-node" || st.Generation != 7 || !st.Ready || len(st.Members) != 1 {
		t.Fatalf("status mangled: %+v", st)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	fb := &fakeBackend{}
	_, cli := startTCP(t, fb)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := cli.Parse(context.Background(), "example.com", "text"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestTCPServerHangsUpOnGarbage sends a corrupt frame and checks the
// server drops the connection instead of answering garbage with
// garbage.
func TestTCPServerHangsUpOnGarbage(t *testing.T) {
	srv, _ := startTCP(t, &fakeBackend{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame whose CRC is wrong.
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte{opStatus}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := readFrame(bufio.NewReader(conn), nil); err == nil {
		t.Fatal("server answered a corrupt frame")
	}
}

// TestTCPUnknownOp checks an unrecognized opcode comes back as a remote
// error, not a hangup — the op-space can grow without breaking old
// servers' peers.
func TestTCPUnknownOp(t *testing.T) {
	srv, _ := startTCP(t, &fakeBackend{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, []byte{0x7F}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, _, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeStatusByte(resp); !errors.Is(err, ErrRemote) {
		t.Fatalf("unknown op: err = %v, want ErrRemote", err)
	}
}

func TestTCPClientDialFailure(t *testing.T) {
	// A port nobody listens on: grab one, then close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cli := DialTCP(addr)
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := cli.Parse(ctx, "example.com", "text"); err == nil {
		t.Fatal("Parse against a dead address succeeded")
	}
}
