package cluster

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

// Options configures a Node. ID is required; everything else has a
// default.
type Options struct {
	// ID is the node's stable ring identity (typically its advertised
	// shard address).
	ID string
	// Addr is the advertised shard-protocol address, reported in
	// Status; empty for in-process nodes.
	Addr string

	// Ring tunes the consistent-hash ring (vnode count, bounded-load
	// factor).
	Ring RingOptions

	// ForwardTimeout bounds one forwarded parse; <= 0 means 2s. A peer
	// that cannot answer within it is marked down and the request
	// degrades to a local cold parse.
	ForwardTimeout time.Duration
	// ApplyTimeout bounds one remote ApplyModel during a rollout
	// (artifact transfer + verify + swap); <= 0 means 30s.
	ApplyTimeout time.Duration
	// BackoffBase is the first per-peer failure backoff; doubles per
	// consecutive failure up to BackoffMax, jittered ±50%. <= 0 means
	// 100ms.
	BackoffBase time.Duration
	// BackoffMax caps the failure backoff; <= 0 means 5s.
	BackoffMax time.Duration
	// RetryAfterBase is the Retry-After hint this node attaches when
	// it sheds a peer's forwarded parse, jittered to 50-150% so a
	// fleet of forwarders spreads its retries; <= 0 means 1s.
	RetryAfterBase time.Duration

	// RemoteCache caps the remote-result/negative LRU (forwarded
	// answers and degraded fallbacks, keyed by domain+text+generation);
	// 0 means 2048, negative disables.
	RemoteCache int

	// Metrics receives cluster.* metrics; nil means a private registry.
	Metrics *obs.Registry
	// Log receives cluster events; nil discards.
	Log *obs.Logger
}

func (o Options) withDefaults() Options {
	if o.ForwardTimeout <= 0 {
		o.ForwardTimeout = 2 * time.Second
	}
	if o.ApplyTimeout <= 0 {
		o.ApplyTimeout = 30 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.RetryAfterBase <= 0 {
		o.RetryAfterBase = time.Second
	}
	if o.RemoteCache == 0 {
		o.RemoteCache = 2048
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Log == nil {
		o.Log = obs.NewLogger("cluster", io.Discard)
	}
	return o
}

type nodeMetrics struct {
	localOwned  *obs.Counter   // cluster.local.owned: requests this node owned and served
	handled     *obs.Counter   // cluster.handle.parses: parses served on behalf of peers
	forwards    *obs.Counter   // cluster.forwards: requests forwarded to an owner
	forwardErrs *obs.Counter   // cluster.forward.errors: forwards that failed (non-overload)
	overloaded  *obs.Counter   // cluster.forward.overloaded: forwards shed by the owner
	degraded    *obs.Counter   // cluster.forward.degraded: forwards that fell back to local parse
	remoteHits  *obs.Counter   // cluster.remote.hits: remote-result LRU hits
	coalesced   *obs.Counter   // cluster.forward.coalesced: forwards that joined an in-flight twin
	rebalances  *obs.Counter   // cluster.ring.rebalances: membership changes
	applies     *obs.Counter   // cluster.model.applies: models applied (join or rollout)
	fetches     *obs.Counter   // cluster.model.fetches: artifacts served to joining peers
	rollouts    *obs.Counter   // cluster.rollouts: coordinated swaps initiated here
	forwardTime *obs.Histogram // cluster.forward.seconds
}

func newNodeMetrics(reg *obs.Registry) nodeMetrics {
	return nodeMetrics{
		localOwned:  reg.Counter("cluster.local.owned"),
		handled:     reg.Counter("cluster.handle.parses"),
		forwards:    reg.Counter("cluster.forwards"),
		forwardErrs: reg.Counter("cluster.forward.errors"),
		overloaded:  reg.Counter("cluster.forward.overloaded"),
		degraded:    reg.Counter("cluster.forward.degraded"),
		remoteHits:  reg.Counter("cluster.remote.hits"),
		coalesced:   reg.Counter("cluster.forward.coalesced"),
		rebalances:  reg.Counter("cluster.ring.rebalances"),
		applies:     reg.Counter("cluster.model.applies"),
		fetches:     reg.Counter("cluster.model.fetches"),
		rollouts:    reg.Counter("cluster.rollouts"),
		forwardTime: reg.Histogram("cluster.forward.seconds", obs.DurationBounds()),
	}
}

// peer is one remote member: its client plus failure-backoff state.
type peer struct {
	id     string
	client ShardClient

	failures  atomic.Uint32
	downUntil atomic.Int64 // unix nanos; 0 = up
}

func (p *peer) down() bool {
	until := p.downUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

func (p *peer) markDown(d time.Duration) {
	p.downUntil.Store(time.Now().Add(d).UnixNano())
}

func (p *peer) reset() {
	p.failures.Store(0)
	p.downUntil.Store(0)
}

// Node is one member of the serving cluster: it owns a slice of the
// ring, serves its slice from the local serve.Server, forwards the rest
// to owners, and participates in model distribution and coordinated
// hot swaps. Node implements Backend (the receiving side of the shard
// protocol) and rdap.ParseBackend (the serving side of /parsed/).
type Node struct {
	opts Options
	id   string
	ring *Ring
	ps   *serve.Server
	mgr  *lifecycle.Manager // optional; nil = plain serve.Server
	log  *obs.Logger
	met  nodeMetrics

	// peers maps member id -> peer. Guarded by pmu; the ring is the
	// routing source of truth, peers the transport directory.
	pmu   sync.RWMutex
	peers map[string]*peer

	// remote is the generation-keyed remote-result/negative LRU;
	// remoteGen bumps on every model apply/invalidate, orphaning old
	// entries.
	remote    *remoteCache
	remoteGen atomic.Uint64

	// inflight coalesces concurrent forwards for the same key.
	fmu      sync.Mutex
	inflight map[remoteKey]*forwardCall

	// artifact holds the serving WMDL bytes (for FetchModel); version
	// is the stamp applied to locally-parsed records when no lifecycle
	// manager is attached. provider, when set, overrides artifact as
	// the FetchModel source — the registry-backed path, where the
	// authoritative bytes live on disk and move with the serving
	// pointer rather than with an in-memory copy.
	artifact atomic.Pointer[[]byte]
	provider atomic.Pointer[func() ([]byte, error)]
	version  atomic.Pointer[string]

	ready atomic.Bool
}

type forwardCall struct {
	done chan struct{}
	rec  *core.ParsedRecord
	err  error
}

// NewNode builds a cluster node over a serving layer. mgr may be nil
// (no lifecycle management; ApplyModel then rebinds ps directly). The
// node adds itself to the ring and is ready immediately — use
// JoinFetchModel to gate readiness on fetching a model from a peer.
func NewNode(ps *serve.Server, mgr *lifecycle.Manager, opts Options) (*Node, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("cluster: node needs an ID")
	}
	o := opts.withDefaults()
	n := &Node{
		opts:     o,
		id:       o.ID,
		ring:     NewRing(o.Ring),
		ps:       ps,
		mgr:      mgr,
		log:      o.Log,
		met:      newNodeMetrics(o.Metrics),
		peers:    make(map[string]*peer),
		inflight: make(map[remoteKey]*forwardCall),
	}
	if o.RemoteCache > 0 {
		n.remote = newRemoteCache(o.RemoteCache)
	}
	empty := ""
	n.version.Store(&empty)
	n.ring.Add(n.id)
	n.ready.Store(true)
	reg := o.Metrics
	reg.GaugeFunc("cluster.ring.nodes", func() float64 { return float64(n.ring.Len()) })
	reg.GaugeFunc("cluster.ring.ownership.self", func() float64 {
		return n.ring.Ownership()[n.id]
	})
	if n.remote != nil {
		reg.GaugeFunc("cluster.remote.entries", func() float64 { return float64(n.remote.len()) })
	}
	return n, nil
}

// ID returns the node's ring identity.
func (n *Node) ID() string { return n.id }

// Ring returns the node's ring (shared routing state; mutate only via
// AddPeer/RemovePeer).
func (n *Node) Ring() *Ring { return n.ring }

// SetModelArtifact installs the WMDL bytes this node serves to joining
// peers via FetchModel, without swapping anything locally — the boot
// path for a node started from an on-disk model.
func (n *Node) SetModelArtifact(data []byte) {
	n.artifact.Store(&data)
}

// SetModelProvider routes FetchModel through fn instead of the static
// artifact bytes: each joining peer gets whatever fn returns at fetch
// time. A registry-backed daemon passes a closure that reads the
// family's current serving artifact, so peers always join on the model
// the registry says is serving — even if this node has not re-resolved
// since the last promote. A nil fn restores the static-artifact path.
func (n *Node) SetModelProvider(fn func() ([]byte, error)) {
	if fn == nil {
		n.provider.Store(nil)
		return
	}
	n.provider.Store(&fn)
}

// AddPeer registers a member and rebalances the ring. Replacing the
// client of an existing peer closes the old one.
func (n *Node) AddPeer(id string, client ShardClient) {
	if id == "" || id == n.id {
		return
	}
	n.pmu.Lock()
	if old, ok := n.peers[id]; ok && old.client != client {
		old.client.Close()
	}
	n.peers[id] = &peer{id: id, client: client}
	n.pmu.Unlock()
	if n.ring.Add(id) {
		n.met.rebalances.Inc()
		n.log.Info("peer joined", "peer", id, "members", n.ring.Len())
	}
}

// RemovePeer drops a member, rebalances the ring, and closes the
// peer's client. Keys it owned redistribute to the survivors; entries
// for them in remote caches age out by LRU.
func (n *Node) RemovePeer(id string) {
	n.pmu.Lock()
	p, ok := n.peers[id]
	delete(n.peers, id)
	n.pmu.Unlock()
	if ok {
		p.client.Close()
	}
	if n.ring.Remove(id) {
		n.met.rebalances.Inc()
		n.log.Info("peer left", "peer", id, "members", n.ring.Len())
	}
}

func (n *Node) peer(id string) *peer {
	n.pmu.RLock()
	p := n.peers[id]
	n.pmu.RUnlock()
	return p
}

// Owner returns the member currently owning domain under the
// bounded-load rule.
func (n *Node) Owner(domain string) string { return n.ring.LookupBounded(domain) }

// ParseDomain serves one request cluster-aware: the ring names the
// domain's owner; if that is this node (or the owner is unreachable)
// the local serving stack answers, otherwise the request forwards to
// the owner — checking the remote-result LRU first, coalescing
// concurrent identical forwards, and degrading to a local cold parse
// when the owner is down, slow, or overloaded. The name matches
// rdap.ParseBackend.
func (n *Node) ParseDomain(ctx context.Context, domain, text string) (*core.ParsedRecord, error) {
	owner := n.ring.LookupBounded(domain)
	if owner == "" || owner == n.id {
		n.met.localOwned.Inc()
		n.ring.Acquire(n.id)
		defer n.ring.Release(n.id)
		return n.localParse(ctx, text)
	}
	p := n.peer(owner)
	if p == nil {
		// Membership raced (owner left between lookup and here); serve
		// locally rather than failing.
		n.met.localOwned.Inc()
		return n.localParse(ctx, text)
	}
	return n.forward(ctx, p, domain, text)
}

// localParse runs text through the local serving stack (cache →
// coalescing → worker pool).
func (n *Node) localParse(ctx context.Context, text string) (*core.ParsedRecord, error) {
	return n.ps.Parse(ctx, text)
}

// forward resolves a non-owned request through the owner, in order:
// remote-result LRU, in-flight coalescing, the wire. Failure degrades
// to a local cold parse; the degraded result is cached as a negative
// entry so a down owner is not re-asked per request.
func (n *Node) forward(ctx context.Context, p *peer, domain, text string) (*core.ParsedRecord, error) {
	k := makeRemoteKey(domain, text, n.remoteGen.Load())
	if n.remote != nil {
		if rec, ok := n.remote.get(k); ok {
			n.met.remoteHits.Inc()
			return rec, nil
		}
	}

	// Singleflight on the forward path: concurrent identical requests
	// ride one wire round trip.
	n.fmu.Lock()
	if c, ok := n.inflight[k]; ok {
		n.fmu.Unlock()
		n.met.coalesced.Inc()
		select {
		case <-c.done:
			return c.rec, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &forwardCall{done: make(chan struct{})}
	n.inflight[k] = c
	n.fmu.Unlock()

	rec, negative, err := n.forwardOnce(ctx, p, domain, text)
	if n.remote != nil && err == nil {
		n.remote.add(k, rec, negative)
	}
	c.rec, c.err = rec, err
	n.fmu.Lock()
	delete(n.inflight, k)
	n.fmu.Unlock()
	close(c.done)
	return rec, err
}

// forwardOnce performs one forward attempt with per-peer timeout and
// backoff, degrading to a local cold parse on any failure. negative
// marks a degraded (locally-parsed) result, cached so the down owner is
// not re-asked for the same key while it recovers.
func (n *Node) forwardOnce(ctx context.Context, p *peer, domain, text string) (rec *core.ParsedRecord, negative bool, err error) {
	if p.down() {
		return n.degrade(ctx, p, text, ErrPeerDown)
	}
	n.met.forwards.Inc()
	n.ring.Acquire(p.id)
	start := time.Now()
	fctx, cancel := context.WithTimeout(ctx, n.opts.ForwardTimeout)
	rec, ferr := p.client.Parse(fctx, domain, text)
	cancel()
	n.ring.Release(p.id)
	n.met.forwardTime.ObserveSince(start)
	if ferr == nil {
		p.reset()
		return rec, false, nil
	}
	var ov *OverloadedError
	switch {
	case errors.As(ferr, &ov):
		// The owner shed us and said when to come back; honor its
		// (already jittered) hint.
		n.met.overloaded.Inc()
		p.markDown(ov.After)
	case errors.Is(ferr, context.Canceled):
		// Our caller gave up — not the peer's fault, no backoff.
		return nil, false, ferr
	default:
		n.met.forwardErrs.Inc()
		fails := p.failures.Add(1)
		p.markDown(backoff(n.opts.BackoffBase, n.opts.BackoffMax, fails))
		n.log.Warn("forward failed", "peer", p.id, "domain", domain, "err", ferr)
	}
	return n.degrade(ctx, p, text, ferr)
}

// degrade serves a request locally that the owner could not take — the
// "one slow peer must not stall the ring" rule. The result is correct
// (same corpus, maybe a colder cache) and marked negative so the cache
// entry is attributable to degradation, not the owner.
func (n *Node) degrade(ctx context.Context, p *peer, text string, cause error) (*core.ParsedRecord, bool, error) {
	n.met.degraded.Inc()
	rec, err := n.localParse(ctx, text)
	if err != nil {
		// Local shed on top of a dead peer: surface the local error,
		// the caller maps it to 503.
		return nil, false, err
	}
	n.log.Debug("degraded to local parse", "peer", p.id, "cause", cause)
	return rec, true, nil
}

// backoff computes the jittered exponential failure backoff.
func backoff(base, max time.Duration, failures uint32) time.Duration {
	d := base
	for i := uint32(1); i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return jitter(d)
}

// jitter spreads d to 50-150% so a fleet's retries decorrelate.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// --- Backend (the receiving side of the shard protocol) ---

// HandleParse serves a parse on behalf of a peer. Overload maps to an
// OverloadedError carrying a jittered Retry-After hint.
func (n *Node) HandleParse(ctx context.Context, domain, text string) (*core.ParsedRecord, error) {
	if !n.ready.Load() {
		return nil, ErrNotReady
	}
	n.met.handled.Inc()
	n.ring.Acquire(n.id)
	rec, err := n.localParse(ctx, text)
	n.ring.Release(n.id)
	if errors.Is(err, serve.ErrOverloaded) || errors.Is(err, serve.ErrClosed) {
		return nil, &OverloadedError{After: jitter(n.opts.RetryAfterBase)}
	}
	return rec, err
}

// ModelArtifact returns the serving WMDL bytes for a joining peer:
// from the provider when one is set, else the static artifact.
func (n *Node) ModelArtifact() ([]byte, error) {
	if fn := n.provider.Load(); fn != nil {
		data, err := (*fn)()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoModel, err)
		}
		if len(data) == 0 {
			return nil, ErrNoModel
		}
		n.met.fetches.Inc()
		return data, nil
	}
	data := n.artifact.Load()
	if data == nil || len(*data) == 0 {
		return nil, ErrNoModel
	}
	n.met.fetches.Inc()
	return *data, nil
}

// ApplyModel verifies artifact (magic, format version, CRC32C, feature
// dimensions) and swaps it live: through the lifecycle manager when one
// is attached (cache generation bumps atomically with the parse
// function), directly onto the serve layer otherwise. The node's
// remote-result cache is invalidated in the same step — its entries
// were produced by peers that are swapping on their own stagger.
// Verification failure leaves the old model serving.
func (n *Node) ApplyModel(artifact []byte) (string, error) {
	info, err := store.StatModelBytes(artifact)
	if err != nil {
		return "", err
	}
	var version string
	if n.mgr != nil {
		snap, err := n.mgr.ReloadFromBytes(artifact)
		if err != nil {
			return "", err
		}
		version = snap.Version
	} else {
		p, err := store.ReadModel(bytes.NewReader(artifact))
		if err != nil {
			return "", err
		}
		version = fmt.Sprintf("wmdl-%08x", info.CRC32C)
		v := version
		n.ps.SetParseFunc(func(text string) *core.ParsedRecord {
			rec := p.Parse(text)
			rec.ModelVersion = v
			return rec
		})
	}
	n.version.Store(&version)
	n.artifact.Store(&artifact)
	n.remoteGen.Add(1) // orphan remote-result entries from the old fleet state
	n.met.applies.Inc()
	n.ready.Store(true)
	n.log.Info("model applied", "version", version, "artifact", info.String())
	return version, nil
}

// Status implements Backend.
func (n *Node) Status() PeerStatus {
	return PeerStatus{
		ID:           n.id,
		Addr:         n.opts.Addr,
		ModelVersion: n.modelVersion(),
		Generation:   n.ps.Generation(),
		Ready:        n.ready.Load(),
		Members:      n.ring.Members(),
	}
}

func (n *Node) modelVersion() string {
	if n.mgr != nil {
		return n.mgr.Current().Version
	}
	return *n.version.Load()
}

// --- Join and rollout ---

// JoinFetchModel fetches the serving WMDL from the given peer, verifies
// it, and swaps it in before the node admits traffic — the join path.
// Until it succeeds the node answers peers with ErrNotReady.
func (n *Node) JoinFetchModel(ctx context.Context, from ShardClient) (string, error) {
	n.ready.Store(false)
	data, err := from.FetchModel(ctx)
	if err != nil {
		return "", fmt.Errorf("cluster: join fetch: %w", err)
	}
	version, err := n.ApplyModel(data) // verifies CRC before swapping; sets ready
	if err != nil {
		return "", fmt.Errorf("cluster: join verify: %w", err)
	}
	n.log.Info("joined with fetched model", "version", version, "bytes", len(data))
	return version, nil
}

// RolloutReport describes one coordinated model rollout.
type RolloutReport struct {
	// Version is the version string the artifact produced locally.
	Version string `json:"version"`
	// Applied lists members that verified and swapped, in ring order.
	Applied []string `json:"applied"`
	// Failed maps members that did not swap to the error.
	Failed map[string]string `json:"failed,omitempty"`
}

// Rollout coordinates a cluster-wide hot swap: the artifact is
// validated locally first, then applied member by member in ring order
// with a jittered stagger between members. Each member's ApplyModel
// bumps that member's cache generation at its own staggered instant, so
// the fleet never invalidates all caches at once — the thundering-herd
// control. Members that fail keep their old model (and report in
// Failed); traffic continues throughout, every response attributable to
// exactly one model version.
func (n *Node) Rollout(ctx context.Context, artifact []byte, stagger time.Duration) (RolloutReport, error) {
	rep := RolloutReport{Failed: map[string]string{}}
	if _, err := store.StatModelBytes(artifact); err != nil {
		return rep, fmt.Errorf("cluster: rollout: %w", err)
	}
	n.met.rollouts.Inc()
	members := n.ring.Members()
	sort.Strings(members) // Members is sorted already; keep the contract explicit
	for i, id := range members {
		if i > 0 && stagger > 0 {
			select {
			case <-time.After(jitter(stagger)):
			case <-ctx.Done():
				return rep, ctx.Err()
			}
		}
		var version string
		var err error
		if id == n.id {
			version, err = n.ApplyModel(artifact)
		} else if p := n.peer(id); p != nil {
			actx, cancel := context.WithTimeout(ctx, n.opts.ApplyTimeout)
			version, err = p.client.ApplyModel(actx, artifact)
			cancel()
		} else {
			err = fmt.Errorf("no client for member")
		}
		if err != nil {
			rep.Failed[id] = err.Error()
			n.log.Warn("rollout member failed", "member", id, "err", err)
			continue
		}
		rep.Applied = append(rep.Applied, id)
		if rep.Version == "" {
			rep.Version = version
		}
	}
	if len(rep.Failed) == 0 {
		rep.Failed = nil
	}
	n.log.Info("rollout complete", "version", rep.Version,
		"applied", len(rep.Applied), "failed", len(rep.Failed))
	return rep, nil
}

// --- Cluster status (the /admin/cluster view) ---

// ClusterInfo aggregates the node's own status with a live poll of
// every peer.
type ClusterInfo struct {
	Self      PeerStatus         `json:"self"`
	Ownership map[string]float64 `json:"ownership"`
	Peers     []PeerInfo         `json:"peers,omitempty"`
}

// PeerInfo is one polled peer: its status, or the error that kept it
// from answering.
type PeerInfo struct {
	ID     string     `json:"id"`
	Status PeerStatus `json:"status,omitempty"`
	Err    string     `json:"error,omitempty"`
	Down   bool       `json:"down,omitempty"`
}

// ClusterStatus polls every peer (bounded by ctx) and returns the
// aggregate view.
func (n *Node) ClusterStatus(ctx context.Context) ClusterInfo {
	info := ClusterInfo{Self: n.Status(), Ownership: n.ring.Ownership()}
	n.pmu.RLock()
	ids := make([]string, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	n.pmu.RUnlock()
	sort.Strings(ids)
	for _, id := range ids {
		p := n.peer(id)
		if p == nil {
			continue
		}
		pi := PeerInfo{ID: id, Down: p.down()}
		st, err := p.client.Status(ctx)
		if err != nil {
			pi.Err = err.Error()
		} else {
			pi.Status = st
		}
		info.Peers = append(info.Peers, pi)
	}
	return info
}

// Close closes every peer client. The serve.Server and lifecycle
// manager are owned by the caller.
func (n *Node) Close() error {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	for _, p := range n.peers {
		p.client.Close()
	}
	n.peers = map[string]*peer{}
	return nil
}

// --- Remote-result LRU ---

// remoteKey identifies one forwarded answer: two independent hashes of
// domain+text plus the node's remote generation (bumped on every model
// apply, so entries from the previous fleet state stop matching) — the
// same keying stance as serve's generation-keyed cache.
type remoteKey struct {
	h1, h2 uint64
	gen    uint64
}

func makeRemoteKey(domain, text string, gen uint64) remoteKey {
	h1 := hashDomain(domain)
	// Second, independent dimension over the text with a different
	// offset basis so h1 collisions don't cascade.
	h2 := uint64(fnvOffset64 ^ 0x9e3779b97f4a7c15)
	for i := 0; i < len(text); i++ {
		h2 ^= uint64(text[i])
		h2 *= fnvPrime64
	}
	h2 ^= uint64(len(text))
	return remoteKey{h1: h1, h2: h2, gen: gen}
}

type remoteEntry struct {
	k        remoteKey
	rec      *core.ParsedRecord
	negative bool
}

// remoteCache is a mutex-guarded LRU of forwarded results. negative
// entries hold locally-degraded answers (the owner was unreachable);
// they serve hits like any other entry and age out by LRU pressure or
// generation bump.
type remoteCache struct {
	mu      sync.Mutex
	cap     int
	entries map[remoteKey]*list.Element
	lru     list.List
}

func newRemoteCache(capacity int) *remoteCache {
	return &remoteCache{cap: capacity, entries: make(map[remoteKey]*list.Element)}
}

func (c *remoteCache) get(k remoteKey) (*core.ParsedRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*remoteEntry).rec, true
}

func (c *remoteCache) add(k remoteKey, rec *core.ParsedRecord, negative bool) {
	if rec == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		ent := el.Value.(*remoteEntry)
		ent.rec, ent.negative = rec, negative
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&remoteEntry{k: k, rec: rec, negative: negative})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*remoteEntry).k)
	}
}

func (c *remoteCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
