package cluster

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(RingOptions{})
	if got := r.Lookup("example.com"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want empty", got)
	}
	if got := r.LookupBounded("example.com"); got != "" {
		t.Fatalf("empty ring LookupBounded = %q, want empty", got)
	}
	if r.Add("") {
		t.Fatal("Add(\"\") succeeded")
	}
	if !r.Add("a") || r.Add("a") {
		t.Fatal("Add should succeed once and refuse the duplicate")
	}
	if r.Remove("missing") {
		t.Fatal("Remove of absent member succeeded")
	}
	if !r.Remove("a") {
		t.Fatal("Remove of present member failed")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after removing the only member", r.Len())
	}
}

func TestRingVersionTracksMembership(t *testing.T) {
	r := NewRing(RingOptions{})
	v0 := r.Version()
	r.Add("a")
	if r.Version() == v0 {
		t.Fatal("Version did not change on Add")
	}
	v1 := r.Version()
	r.Add("a") // no-op
	if r.Version() != v1 {
		t.Fatal("Version changed on no-op Add")
	}
	r.Remove("a")
	if r.Version() == v1 {
		t.Fatal("Version did not change on Remove")
	}
}

func TestRingLookupDeterministicAcrossInstances(t *testing.T) {
	build := func() *Ring {
		r := NewRing(RingOptions{})
		// Insertion order must not matter: states are rebuilt from the
		// sorted id list.
		for _, id := range []string{"node-b", "node-a", "node-c"} {
			r.Add(id)
		}
		return r
	}
	r1, r2 := build(), build()
	for i := 0; i < 1000; i++ {
		d := fmt.Sprintf("domain%d.com", i)
		if r1.Lookup(d) != r2.Lookup(d) {
			t.Fatalf("rings disagree on %s: %s vs %s", d, r1.Lookup(d), r2.Lookup(d))
		}
	}
}

func TestRingLookupCaseInsensitive(t *testing.T) {
	r := NewRing(RingOptions{})
	r.Add("node-a")
	r.Add("node-b")
	r.Add("node-c")
	for i := 0; i < 200; i++ {
		lower := fmt.Sprintf("domain%d.com", i)
		upper := fmt.Sprintf("DOMAIN%d.COM", i)
		if r.Lookup(lower) != r.Lookup(upper) {
			t.Fatalf("case-sensitive routing for %s", lower)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(RingOptions{})
	members := []string{"node-a", "node-b", "node-c"}
	for _, id := range members {
		r.Add(id)
	}
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Lookup(fmt.Sprintf("domain%d.com", i))]++
	}
	for _, id := range members {
		frac := float64(counts[id]) / n
		// With 128 vnodes/member the 3-way split should be far from
		// degenerate; 15% is a loose floor that still catches broken
		// hashing or search.
		if frac < 0.15 || frac > 0.60 {
			t.Fatalf("member %s owns %.1f%% of keys, outside [15%%, 60%%]", id, frac*100)
		}
	}
}

func TestRingRemoveOnlyRemapsRemovedKeys(t *testing.T) {
	r := NewRing(RingOptions{})
	for _, id := range []string{"node-a", "node-b", "node-c", "node-d"} {
		r.Add(id)
	}
	before := map[string]string{}
	for i := 0; i < 2000; i++ {
		d := fmt.Sprintf("domain%d.com", i)
		before[d] = r.Lookup(d)
	}
	r.Remove("node-c")
	for d, owner := range before {
		got := r.Lookup(d)
		if owner == "node-c" {
			if got == "node-c" {
				t.Fatalf("%s still routed to the removed member", d)
			}
			continue
		}
		if got != owner {
			t.Fatalf("%s moved %s -> %s though its owner stayed", d, owner, got)
		}
	}
}

func TestRingAddRemapsOnlyToNewMember(t *testing.T) {
	r := NewRing(RingOptions{})
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		r.Add(id)
	}
	before := map[string]string{}
	for i := 0; i < 2000; i++ {
		d := fmt.Sprintf("domain%d.com", i)
		before[d] = r.Lookup(d)
	}
	r.Add("node-d")
	moved := 0
	for d, owner := range before {
		got := r.Lookup(d)
		if got != owner {
			if got != "node-d" {
				t.Fatalf("%s moved %s -> %s, not to the new member", d, owner, got)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new member")
	}
	if frac := float64(moved) / float64(len(before)); frac > 0.5 {
		t.Fatalf("%.1f%% of keys moved on one join; consistent hashing should move ~1/N", frac*100)
	}
}

func TestRingBoundedLoadReroutes(t *testing.T) {
	r := NewRing(RingOptions{LoadFactor: 1.25})
	r.Add("node-a")
	r.Add("node-b")
	d := "domain0.com"
	primary := r.Lookup(d)
	other := "node-a"
	if primary == "node-a" {
		other = "node-b"
	}
	if got := r.LookupBounded(d); got != primary {
		t.Fatalf("unloaded ring rerouted %s: %s != %s", d, got, primary)
	}
	// Pile in-flight load onto the primary: cap = ceil(1.25*(10+1)/2) = 7,
	// so a primary at 10 must overflow to the other member.
	for i := 0; i < 10; i++ {
		r.Acquire(primary)
	}
	if got := r.LookupBounded(d); got != other {
		t.Fatalf("overloaded primary not skipped: got %s, want %s", got, other)
	}
	for i := 0; i < 10; i++ {
		r.Release(primary)
	}
	if got := r.LookupBounded(d); got != primary {
		t.Fatalf("drained primary not restored: got %s, want %s", got, primary)
	}
}

func TestRingBoundedLoadDisabled(t *testing.T) {
	r := NewRing(RingOptions{LoadFactor: -1})
	r.Add("node-a")
	r.Add("node-b")
	d := "domain0.com"
	primary := r.Lookup(d)
	for i := 0; i < 100; i++ {
		r.Acquire(primary)
	}
	if got := r.LookupBounded(d); got != primary {
		t.Fatalf("bounding disabled but %s rerouted to %s", d, got)
	}
}

func TestRingOwnershipSumsToOne(t *testing.T) {
	r := NewRing(RingOptions{})
	if got := r.Ownership(); len(got) != 0 {
		t.Fatalf("empty ring Ownership = %v", got)
	}
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		r.Add(id)
	}
	own := r.Ownership()
	var sum float64
	for id, frac := range own {
		if frac <= 0 {
			t.Fatalf("member %s owns %f of the ring", id, frac)
		}
		sum += frac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ownership fractions sum to %f, want 1", sum)
	}
}

// TestRingConcurrentChurn exercises lookups against live membership
// changes; the -race build is the assertion.
func TestRingConcurrentChurn(t *testing.T) {
	r := NewRing(RingOptions{})
	r.Add("stable-a")
	r.Add("stable-b")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := fmt.Sprintf("domain%d.com", i%500)
				if owner := r.LookupBounded(d); owner == "" {
					t.Error("lookup returned no owner on a non-empty ring")
					return
				}
				r.Acquire("stable-a")
				r.Release("stable-a")
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("churn-%d", i%3)
		r.Add(id)
		r.Ownership()
		r.Remove(id)
	}
	close(stop)
	wg.Wait()
}
