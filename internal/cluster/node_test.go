package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// errClient is a ShardClient that fails every call the same way.
type errClient struct{ err error }

func (c errClient) Parse(context.Context, string, string) (*core.ParsedRecord, error) {
	return nil, c.err
}
func (c errClient) FetchModel(context.Context) ([]byte, error)         { return nil, c.err }
func (c errClient) ApplyModel(context.Context, []byte) (string, error) { return "", c.err }
func (c errClient) Status(context.Context) (PeerStatus, error)         { return PeerStatus{}, c.err }
func (c errClient) Close() error                                       { return nil }

func TestNodeRequiresID(t *testing.T) {
	ps := serve.NewFunc(echoParse("x"), serve.Options{Workers: 1})
	defer ps.Close()
	if _, err := NewNode(ps, nil, Options{}); err == nil {
		t.Fatal("NewNode accepted an empty ID")
	}
}

func TestNodeOwnerServesLocally(t *testing.T) {
	reg := obs.NewRegistry()
	n := testNode(t, "solo", echoParse("solo"), Options{Metrics: reg})
	rec, err := n.ParseDomain(context.Background(), "example.com", "text")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Registrar != "solo" {
		t.Fatalf("served by %q, want solo", rec.Registrar)
	}
	if got := reg.Counter("cluster.local.owned").Value(); got != 1 {
		t.Fatalf("local.owned = %d, want 1", got)
	}
	if got := reg.Counter("cluster.forwards").Value(); got != 0 {
		t.Fatalf("forwards = %d, want 0", got)
	}
}

func TestNodeForwardsToOwner(t *testing.T) {
	regA := obs.NewRegistry()
	regB := obs.NewRegistry()
	a := testNode(t, "node-a", echoParse("node-a"), Options{Metrics: regA})
	b := testNode(t, "node-b", echoParse("node-b"), Options{Metrics: regB})
	link(a, b)
	d := domainOwnedBy(t, a.Ring(), "node-b")

	rec, err := a.ParseDomain(context.Background(), d, "text-"+d)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Registrar != "node-b" {
		t.Fatalf("%s served by %q, want its owner node-b", d, rec.Registrar)
	}
	if got := regA.Counter("cluster.forwards").Value(); got != 1 {
		t.Fatalf("forwards = %d, want 1", got)
	}
	if got := regB.Counter("cluster.handle.parses").Value(); got != 1 {
		t.Fatalf("peer handled = %d, want 1", got)
	}

	// Second identical request: answered from the remote-result LRU, no
	// second trip to the owner.
	if _, err := a.ParseDomain(context.Background(), d, "text-"+d); err != nil {
		t.Fatal(err)
	}
	if got := regA.Counter("cluster.remote.hits").Value(); got != 1 {
		t.Fatalf("remote.hits = %d, want 1", got)
	}
	if got := regA.Counter("cluster.forwards").Value(); got != 1 {
		t.Fatalf("forwards after cache hit = %d, want still 1", got)
	}
}

func TestNodeForwardCoalesces(t *testing.T) {
	regA := obs.NewRegistry()
	block := make(chan struct{})
	var calls atomic.Int32
	bFn := func(text string) *core.ParsedRecord {
		calls.Add(1)
		<-block
		return &core.ParsedRecord{DomainName: text, Registrar: "node-b"}
	}
	a := testNode(t, "node-a", echoParse("node-a"), Options{Metrics: regA, ForwardTimeout: 10 * time.Second})
	b := testNode(t, "node-b", bFn, Options{})
	link(a, b)
	d := domainOwnedBy(t, a.Ring(), "node-b")

	const concurrent = 8
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, err := a.ParseDomain(context.Background(), d, "text-"+d)
			if err != nil {
				errs <- err
				return
			}
			if rec.Registrar != "node-b" {
				errs <- fmt.Errorf("served by %q", rec.Registrar)
			}
		}()
	}
	// Wait until at least one twin has joined the in-flight forward,
	// then let the owner's parse finish.
	deadline := time.Now().Add(5 * time.Second)
	for regA.Counter("cluster.forward.coalesced").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no forward ever coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("owner parsed %d times for %d concurrent identical requests", got, concurrent)
	}
}

func TestNodeDegradesOnPeerFailure(t *testing.T) {
	reg := obs.NewRegistry()
	// BackoffBase far beyond the test's runtime: the second request must
	// land inside the failure-backoff window.
	a := testNode(t, "node-a", echoParse("node-a"), Options{Metrics: reg, BackoffBase: 10 * time.Second})
	a.AddPeer("node-b", errClient{err: errors.New("synthetic peer failure")})
	d1 := domainOwnedBy(t, a.Ring(), "node-b")
	d2 := ""
	for i := 0; i < 10000; i++ {
		d := fmt.Sprintf("other%d.com", i)
		if a.Ring().Lookup(d) == "node-b" {
			d2 = d
			break
		}
	}
	if d2 == "" {
		t.Fatal("no second domain owned by node-b")
	}

	rec, err := a.ParseDomain(context.Background(), d1, "text1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Registrar != "node-a" {
		t.Fatalf("degraded request served by %q, want local node-a", rec.Registrar)
	}
	if got := reg.Counter("cluster.forward.errors").Value(); got != 1 {
		t.Fatalf("forward.errors = %d, want 1", got)
	}
	if got := reg.Counter("cluster.forward.degraded").Value(); got != 1 {
		t.Fatalf("degraded = %d, want 1", got)
	}

	// The peer is now inside its backoff window: the next request for
	// its keys degrades immediately without touching the wire.
	if _, err := a.ParseDomain(context.Background(), d2, "text2"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("cluster.forwards").Value(); got != 1 {
		t.Fatalf("forwards = %d after backoff, want still 1", got)
	}
	if got := reg.Counter("cluster.forward.degraded").Value(); got != 2 {
		t.Fatalf("degraded = %d, want 2", got)
	}
}

func TestNodeHonorsPeerRetryAfter(t *testing.T) {
	reg := obs.NewRegistry()
	a := testNode(t, "node-a", echoParse("node-a"), Options{Metrics: reg})
	a.AddPeer("node-b", errClient{err: &OverloadedError{After: 100 * time.Millisecond}})
	var owned []string
	for i := 0; len(owned) < 3 && i < 20000; i++ {
		d := fmt.Sprintf("domain%d.com", i)
		if a.Ring().Lookup(d) == "node-b" {
			owned = append(owned, d)
		}
	}
	if len(owned) < 3 {
		t.Fatal("not enough domains owned by node-b")
	}

	if _, err := a.ParseDomain(context.Background(), owned[0], "t0"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("cluster.forward.overloaded").Value(); got != 1 {
		t.Fatalf("overloaded = %d, want 1", got)
	}
	// Within the hint: no wire contact.
	if _, err := a.ParseDomain(context.Background(), owned[1], "t1"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("cluster.forwards").Value(); got != 1 {
		t.Fatalf("forwards = %d inside Retry-After, want 1", got)
	}
	// After the hint expires the peer is retried.
	time.Sleep(150 * time.Millisecond)
	if _, err := a.ParseDomain(context.Background(), owned[2], "t2"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("cluster.forwards").Value(); got != 2 {
		t.Fatalf("forwards = %d after Retry-After, want 2", got)
	}
}

func TestNodeCancelIsNotPeerFailure(t *testing.T) {
	reg := obs.NewRegistry()
	a := testNode(t, "node-a", echoParse("node-a"), Options{Metrics: reg})
	a.AddPeer("node-b", errClient{err: context.Canceled})
	d := domainOwnedBy(t, a.Ring(), "node-b")

	if _, err := a.ParseDomain(context.Background(), d, "t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled surfaced", err)
	}
	if got := reg.Counter("cluster.forward.degraded").Value(); got != 0 {
		t.Fatalf("degraded = %d on caller cancellation, want 0", got)
	}
	// The peer must not be blamed: the next request forwards again.
	if _, err := a.ParseDomain(context.Background(), d, "t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("second err = %v", err)
	}
	if got := reg.Counter("cluster.forwards").Value(); got != 2 {
		t.Fatalf("forwards = %d, want 2 (no backoff on cancel)", got)
	}
}

func TestNodeHandleParseMapsOverload(t *testing.T) {
	ps := serve.NewFunc(echoParse("solo"), serve.Options{Workers: 1})
	n, err := NewNode(ps, nil, Options{ID: "solo", RetryAfterBase: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ps.Close() // ErrClosed from the serving layer must map like overload
	_, err = n.HandleParse(context.Background(), "example.com", "text")
	var ov *OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want OverloadedError", err)
	}
	if ov.After < 200*time.Millisecond || ov.After > 600*time.Millisecond {
		t.Fatalf("Retry-After %s outside the 50-150%% jitter band of 400ms", ov.After)
	}
}

func TestNodeJoinFetchModel(t *testing.T) {
	artA, _ := artifacts(t)
	a := testNode(t, "node-a", echoParse("node-a"), Options{})
	a.SetModelArtifact(artA)
	b := testNode(t, "node-b", echoParse("node-b"), Options{})

	version, err := b.JoinFetchModel(context.Background(), &InprocClient{B: a})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(version, "wmdl-") {
		t.Fatalf("version = %q, want a wmdl-<crc> stamp", version)
	}
	st := b.Status()
	if !st.Ready || st.ModelVersion != version {
		t.Fatalf("status after join = %+v", st)
	}
	// The fetched model now serves, stamping its version on every parse.
	rec, err := b.HandleParse(context.Background(), "example.com", "Domain Name: EXAMPLE.COM\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if rec.ModelVersion != version {
		t.Fatalf("parse stamped %q, want %q", rec.ModelVersion, version)
	}
	// The joined node can itself seed the next joiner.
	if _, err := b.ModelArtifact(); err != nil {
		t.Fatalf("joined node has no artifact to serve: %v", err)
	}
}

func TestNodeModelProvider(t *testing.T) {
	artA, artB := artifacts(t)
	a := testNode(t, "node-a", echoParse("node-a"), Options{})
	a.SetModelArtifact(artA) // static bytes that the provider must shadow

	// The provider wins over the static artifact, and is consulted at
	// fetch time — a registry promote between fetches changes what the
	// next joiner receives without touching the node.
	current := &artB
	a.SetModelProvider(func() ([]byte, error) { return *current, nil })

	got, err := a.ModelArtifact()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(artB) {
		t.Fatal("provider bytes not served")
	}
	current = &artA
	if got, _ := a.ModelArtifact(); string(got) != string(artA) {
		t.Fatal("provider not consulted per fetch")
	}

	// A failing provider maps to ErrNoModel: joiners stay gated rather
	// than receiving an empty or stale model.
	a.SetModelProvider(func() ([]byte, error) { return nil, errors.New("registry unreadable") })
	if _, err := a.ModelArtifact(); !errors.Is(err, ErrNoModel) {
		t.Fatalf("err = %v, want ErrNoModel", err)
	}

	// Clearing the provider restores the static path, and a joiner can
	// fetch through the provider end to end.
	a.SetModelProvider(nil)
	if got, _ := a.ModelArtifact(); string(got) != string(artA) {
		t.Fatal("static artifact not restored")
	}
	a.SetModelProvider(func() ([]byte, error) { return artB, nil })
	b := testNode(t, "node-b", echoParse("node-b"), Options{})
	if _, err := b.JoinFetchModel(context.Background(), &InprocClient{B: a}); err != nil {
		t.Fatal(err)
	}
	if !b.Status().Ready {
		t.Fatal("joiner not ready after provider-backed fetch")
	}
}

func TestNodeJoinFailsClosed(t *testing.T) {
	b := testNode(t, "node-b", echoParse("node-b"), Options{})
	if _, err := b.JoinFetchModel(context.Background(), errClient{err: errors.New("fetch refused")}); err == nil {
		t.Fatal("join succeeded against a dead peer")
	}
	if b.Status().Ready {
		t.Fatal("node ready after a failed join")
	}
	if _, err := b.HandleParse(context.Background(), "example.com", "text"); !errors.Is(err, ErrNotReady) {
		t.Fatalf("err = %v, want ErrNotReady", err)
	}
	// A peer with no artifact keeps the joiner gated too.
	empty := testNode(t, "node-c", echoParse("node-c"), Options{})
	if _, err := b.JoinFetchModel(context.Background(), &InprocClient{B: empty}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("err = %v, want ErrNoModel", err)
	}
}

func TestNodeApplyModelRejectsCorruptArtifact(t *testing.T) {
	artA, _ := artifacts(t)
	n := testNode(t, "solo", echoParse("solo"), Options{})
	genBefore := n.Status().Generation

	if _, err := n.ApplyModel([]byte("not a model")); err == nil {
		t.Fatal("garbage artifact accepted")
	}
	// Valid header, corrupt payload: StatModelBytes passes, the full
	// CRC verification in ReadModel must still refuse the swap.
	corrupt := append([]byte(nil), artA...)
	corrupt[len(corrupt)-1] ^= 0xFF
	if _, err := n.ApplyModel(corrupt); err == nil {
		t.Fatal("corrupt artifact accepted")
	}
	st := n.Status()
	if st.ModelVersion != "" {
		t.Fatalf("version = %q after failed applies, want unchanged", st.ModelVersion)
	}
	if st.Generation != genBefore {
		t.Fatal("cache generation bumped by a failed apply")
	}
	// The old parse function still serves.
	rec, err := n.ParseDomain(context.Background(), "example.com", "text")
	if err != nil || rec.Registrar != "solo" {
		t.Fatalf("old model not serving after failed apply: %v %+v", err, rec)
	}
}

func TestNodeRollout(t *testing.T) {
	_, artB := artifacts(t)
	regs := map[string]*obs.Registry{}
	var nodes []*Node
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		reg := obs.NewRegistry()
		regs[id] = reg
		nodes = append(nodes, testNode(t, id, echoParse(id), Options{Metrics: reg}))
	}
	link(nodes...)
	gensBefore := map[string]uint64{}
	for _, n := range nodes {
		gensBefore[n.ID()] = n.Status().Generation
	}

	rep, err := nodes[0].Rollout(context.Background(), artB, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Applied) != 3 || rep.Failed != nil {
		t.Fatalf("rollout report %+v, want 3 applied, none failed", rep)
	}
	if rep.Version == "" {
		t.Fatal("rollout produced no version")
	}
	for _, n := range nodes {
		st := n.Status()
		if st.ModelVersion != rep.Version {
			t.Fatalf("%s serves %q after rollout, want %q", n.ID(), st.ModelVersion, rep.Version)
		}
		if st.Generation == gensBefore[n.ID()] {
			t.Fatalf("%s cache generation did not bump on swap", n.ID())
		}
	}
	for id, reg := range regs {
		if got := reg.Counter("cluster.model.applies").Value(); got != 1 {
			t.Fatalf("%s applies = %d, want 1", id, got)
		}
	}
}

func TestNodeRolloutReportsFailures(t *testing.T) {
	_, artB := artifacts(t)
	a := testNode(t, "node-a", echoParse("node-a"), Options{})
	a.AddPeer("node-dead", errClient{err: errors.New("apply refused")})

	rep, err := a.Rollout(context.Background(), artB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Applied) != 1 || rep.Applied[0] != "node-a" {
		t.Fatalf("applied = %v, want [node-a]", rep.Applied)
	}
	if rep.Failed["node-dead"] == "" {
		t.Fatalf("failed = %v, want node-dead recorded", rep.Failed)
	}
	// The healthy member still swapped.
	if a.Status().ModelVersion != rep.Version {
		t.Fatal("initiating node did not swap")
	}
}

func TestNodeClusterStatus(t *testing.T) {
	a := testNode(t, "node-a", echoParse("node-a"), Options{})
	b := testNode(t, "node-b", echoParse("node-b"), Options{})
	link(a, b)
	a.AddPeer("node-dead", errClient{err: errors.New("unreachable")})

	info := a.ClusterStatus(context.Background())
	if info.Self.ID != "node-a" {
		t.Fatalf("self = %+v", info.Self)
	}
	if len(info.Ownership) != 3 {
		t.Fatalf("ownership over %d members, want 3", len(info.Ownership))
	}
	byID := map[string]PeerInfo{}
	for _, p := range info.Peers {
		byID[p.ID] = p
	}
	if byID["node-b"].Status.ID != "node-b" || byID["node-b"].Err != "" {
		t.Fatalf("healthy peer polled wrong: %+v", byID["node-b"])
	}
	if byID["node-dead"].Err == "" {
		t.Fatalf("dead peer reported no error: %+v", byID["node-dead"])
	}
}

func TestNodeRemovePeerRebalances(t *testing.T) {
	reg := obs.NewRegistry()
	a := testNode(t, "node-a", echoParse("node-a"), Options{Metrics: reg})
	b := testNode(t, "node-b", echoParse("node-b"), Options{})
	link(a, b)
	d := domainOwnedBy(t, a.Ring(), "node-b")
	v := a.Ring().Version()

	a.RemovePeer("node-b")
	if a.Ring().Version() == v {
		t.Fatal("ring version unchanged after leave")
	}
	if got := a.Ring().Lookup(d); got != "node-a" {
		t.Fatalf("%s owned by %q after leave, want node-a", d, got)
	}
	// The departed member's keys now serve locally.
	rec, err := a.ParseDomain(context.Background(), d, "text-"+d)
	if err != nil || rec.Registrar != "node-a" {
		t.Fatalf("post-leave serve: %v %+v", err, rec)
	}
	if got := reg.Counter("cluster.ring.rebalances").Value(); got != 2 { // join + leave
		t.Fatalf("rebalances = %d, want 2", got)
	}
}

func TestRemoteCacheLRUAndGeneration(t *testing.T) {
	c := newRemoteCache(2)
	k1 := makeRemoteKey("a.com", "t", 0)
	k2 := makeRemoteKey("b.com", "t", 0)
	k3 := makeRemoteKey("c.com", "t", 0)
	c.add(k1, &core.ParsedRecord{DomainName: "a.com"}, false)
	c.add(k2, &core.ParsedRecord{DomainName: "b.com"}, true)
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 missing")
	}
	c.add(k3, &core.ParsedRecord{DomainName: "c.com"}, false) // evicts k2 (LRU after k1's touch)
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 survived past capacity")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// A generation bump orphans old entries by key construction.
	if k1gen1 := makeRemoteKey("a.com", "t", 1); k1gen1 == k1 {
		t.Fatal("generation not part of the remote key")
	}
}
