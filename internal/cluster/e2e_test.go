package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/serve"
	"repro/internal/synth"
)

// TestClusterE2EOwnership spins a 3-node in-process cluster and checks
// the routing invariant end to end: whichever node a request lands on,
// the record is produced by the domain's ring owner.
func TestClusterE2EOwnership(t *testing.T) {
	ids := []string{"node-a", "node-b", "node-c"}
	var nodes []*Node
	for _, id := range ids {
		nodes = append(nodes, testNode(t, id, echoParse(id), Options{}))
	}
	link(nodes...)

	ctx := context.Background()
	served := map[string]int{}
	for i := 0; i < 300; i++ {
		d := fmt.Sprintf("domain%d.com", i)
		entry := nodes[i%len(nodes)] // requests land round-robin
		rec, err := entry.ParseDomain(ctx, d, "whois "+d)
		if err != nil {
			t.Fatalf("%s via %s: %v", d, entry.ID(), err)
		}
		owner := entry.Ring().Lookup(d)
		if rec.Registrar != owner {
			t.Fatalf("%s produced by %q, ring owner is %q", d, rec.Registrar, owner)
		}
		served[rec.Registrar]++
	}
	for _, id := range ids {
		if served[id] == 0 {
			t.Fatalf("node %s never served; distribution broken (%v)", id, served)
		}
	}
}

// TestClusterE2EHotSwapDuringTraffic is the coordinated-hot-swap
// acceptance test: three nodes serve live traffic through lifecycle
// managers while a rollout staggers a new model across the ring. Zero
// requests may fail, and every response must be attributable to exactly
// one model version — the old or the new, never a blend or a blank.
func TestClusterE2EHotSwapDuringTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models; skipped in -short")
	}
	pa, _ := parsers(t)
	_, artB := artifacts(t)

	ids := []string{"node-a", "node-b", "node-c"}
	var nodes []*Node
	var oldVersion string
	for _, id := range ids {
		mgr := lifecycle.New(pa, lifecycle.Options{})
		ps := serve.NewFunc(mgr.ParseFunc(), serve.Options{Workers: 4})
		mgr.Attach(ps)
		t.Cleanup(func() { ps.Close() })
		n, err := NewNode(ps, mgr, Options{ID: id, Ring: RingOptions{LoadFactor: -1}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodes = append(nodes, n)
		oldVersion = mgr.Current().Version
	}
	link(nodes...)

	recs := synth.GenerateLabeled(synth.Config{N: 60, Seed: 99})
	ctx := context.Background()

	var mu sync.Mutex
	seen := map[string]int{} // model version -> responses
	var failures []error
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := recs[(g*17+i)%len(recs)]
				entry := nodes[(g+i)%len(nodes)]
				rec, err := entry.ParseDomain(ctx, r.Domain, r.Text)
				mu.Lock()
				switch {
				case err != nil:
					failures = append(failures, fmt.Errorf("%s via %s: %w", r.Domain, entry.ID(), err))
				case rec == nil || rec.ModelVersion == "":
					failures = append(failures, fmt.Errorf("%s: response not attributable to a model version", r.Domain))
				default:
					seen[rec.ModelVersion]++
				}
				mu.Unlock()
			}
		}(g)
	}

	// Let traffic warm both the owner caches and the forward paths,
	// then roll the new model across the ring under load.
	time.Sleep(50 * time.Millisecond)
	rep, err := nodes[0].Rollout(ctx, artB, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("%d requests failed during the hot swap; first: %v", len(failures), failures[0])
	}
	if len(rep.Applied) != 3 || rep.Failed != nil {
		t.Fatalf("rollout report %+v", rep)
	}
	if rep.Version == oldVersion || rep.Version == "" {
		t.Fatalf("rollout version %q did not change from %q", rep.Version, oldVersion)
	}
	for v := range seen {
		if v != oldVersion && v != rep.Version {
			t.Fatalf("response attributed to unknown model version %q (known: %q, %q)", v, oldVersion, rep.Version)
		}
	}
	if seen[oldVersion] == 0 {
		t.Error("no traffic was served by the old model; swap happened before traffic started")
	}

	// After the rollout settles, every node answers with the new version.
	for _, n := range nodes {
		if got := n.Status().ModelVersion; got != rep.Version {
			t.Fatalf("%s still serves %q, want %q", n.ID(), got, rep.Version)
		}
		rec, err := n.HandleParse(ctx, recs[0].Domain, recs[0].Text)
		if err != nil {
			t.Fatal(err)
		}
		if rec.ModelVersion != rep.Version {
			t.Fatalf("%s parse stamped %q after rollout, want %q", n.ID(), rec.ModelVersion, rep.Version)
		}
	}
}

// TestClusterE2EMembershipChurn keeps traffic flowing while a fourth
// node joins and leaves repeatedly. No request may fail, and every
// response must come from a node that was a member at some point —
// the -race build doubles as the rebalance safety assertion.
func TestClusterE2EMembershipChurn(t *testing.T) {
	stable := []string{"node-a", "node-b", "node-c"}
	var nodes []*Node
	for _, id := range stable {
		nodes = append(nodes, testNode(t, id, echoParse(id), Options{}))
	}
	link(nodes...)
	churner := testNode(t, "node-d", echoParse("node-d"), Options{})

	valid := map[string]bool{"node-a": true, "node-b": true, "node-c": true, "node-d": true}
	ctx := context.Background()
	stop := make(chan struct{})
	errCh := make(chan error, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := fmt.Sprintf("domain%d.com", (g*31+i)%200)
				entry := nodes[(g+i)%len(nodes)]
				rec, err := entry.ParseDomain(ctx, d, "whois "+d)
				if err != nil {
					errCh <- fmt.Errorf("%s via %s: %w", d, entry.ID(), err)
					return
				}
				if !valid[rec.Registrar] {
					errCh <- fmt.Errorf("%s served by unknown member %q", d, rec.Registrar)
					return
				}
			}
		}(g)
	}

	for round := 0; round < 20; round++ {
		for _, n := range nodes {
			n.AddPeer("node-d", &InprocClient{B: churner})
			churner.AddPeer(n.ID(), &InprocClient{B: n})
		}
		time.Sleep(2 * time.Millisecond)
		for _, n := range nodes {
			n.RemovePeer("node-d")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
