package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{},
		[]byte("x"),
		bytes.Repeat([]byte("abc123"), 1000),
	}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	var scratch []byte
	for i, want := range payloads {
		got, s, err := readFrame(r, scratch)
		scratch = s
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := readFrame(r, scratch); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameCorruptCRC(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("hello wire")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] ^= 0xff // flip a CRC byte
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(b)), nil); !errors.Is(err, ErrBadWireCRC) {
		t.Fatalf("err = %v, want ErrBadWireCRC", err)
	}
	// Flip a payload byte instead; same detection.
	buf.Reset()
	if err := writeFrame(&buf, []byte("hello wire")); err != nil {
		t.Fatal(err)
	}
	b = buf.Bytes()
	b[2] ^= 0x01
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(b)), nil); !errors.Is(err, ErrBadWireCRC) {
		t.Fatalf("err = %v, want ErrBadWireCRC", err)
	}
}

func TestFrameTorn(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("truncate me please")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{1, len(b) / 2, len(b) - 1} {
		if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(b[:cut])), nil); !errors.Is(err, ErrTornWire) {
			t.Fatalf("cut at %d: err = %v, want ErrTornWire", cut, err)
		}
	}
}

func TestFrameTooBig(t *testing.T) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], maxWireFrame+1)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:n])), nil); !errors.Is(err, ErrWireTooBig) {
		t.Fatalf("err = %v, want ErrWireTooBig", err)
	}
}

func TestParseReqRoundTrip(t *testing.T) {
	body := encodeParseReq(nil, "example.com", "Domain Name: EXAMPLE.COM\n")
	if body[0] != opParse {
		t.Fatalf("op byte = %d", body[0])
	}
	domain, text, err := decodeParseReq(body[1:])
	if err != nil {
		t.Fatal(err)
	}
	if domain != "example.com" || text != "Domain Name: EXAMPLE.COM\n" {
		t.Fatalf("round trip mismatch: %q / %q", domain, text)
	}
	// Trailing garbage must be rejected, not silently ignored.
	if _, _, err := decodeParseReq(append(body[1:], 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, _, err := decodeParseReq(body[1 : len(body)-1]); err == nil {
		t.Fatal("truncated request accepted")
	}
}

func TestRecordRespRoundTrip(t *testing.T) {
	rec := &core.ParsedRecord{
		DomainName:   "example.com",
		Registrar:    "Example Registrar, Inc.",
		CreatedDate:  "1999-07-01",
		ModelVersion: "wmdl-deadbeef",
	}
	resp := encodeRecordResp(nil, "example.com", rec)
	body, err := decodeStatusByte(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecordResp(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.DomainName != rec.DomainName || got.Registrar != rec.Registrar ||
		got.CreatedDate != rec.CreatedDate || got.ModelVersion != rec.ModelVersion {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestErrorRespMapping(t *testing.T) {
	// Overload carries its Retry-After hint across the wire.
	resp := encodeErrorResp(nil, &OverloadedError{After: 1500 * time.Millisecond})
	_, err := decodeStatusByte(resp)
	var ov *OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want OverloadedError", err)
	}
	if ov.After != 1500*time.Millisecond {
		t.Fatalf("After = %s, want 1.5s", ov.After)
	}
	if !errors.Is(err, ErrPeerOverloaded) {
		t.Fatal("OverloadedError does not match ErrPeerOverloaded")
	}

	// ErrNoModel keeps its identity.
	resp = encodeErrorResp(nil, fmt.Errorf("wrapped: %w", ErrNoModel))
	if _, err := decodeStatusByte(resp); !errors.Is(err, ErrNoModel) {
		t.Fatalf("err = %v, want ErrNoModel", err)
	}

	// Anything else becomes an ErrRemote with the message preserved.
	resp = encodeErrorResp(nil, errors.New("disk on fire"))
	_, err = decodeStatusByte(resp)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if want := "disk on fire"; err == nil || !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("message lost: %v", err)
	}
}

func TestDecodeStatusByteMalformed(t *testing.T) {
	if _, err := decodeStatusByte(nil); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("empty response: err = %v, want ErrBadMessage", err)
	}
	if _, err := decodeStatusByte([]byte{99}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("unknown status: err = %v, want ErrBadMessage", err)
	}
}

func TestStatusRespRoundTrip(t *testing.T) {
	want := PeerStatus{
		ID:           "node-a",
		Addr:         "127.0.0.1:9999",
		ModelVersion: "m3-0a0b0c0d",
		Generation:   17,
		Ready:        true,
		Members:      []string{"node-a", "node-b", "node-c"},
	}
	resp := encodeStatusResp(nil, want)
	body, err := decodeStatusByte(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeStatusResp(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Addr != want.Addr || got.ModelVersion != want.ModelVersion ||
		got.Generation != want.Generation || got.Ready != want.Ready {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.Members) != 3 || got.Members[0] != "node-a" || got.Members[2] != "node-c" {
		t.Fatalf("members mismatch: %v", got.Members)
	}
	if _, err := decodeStatusResp(body[:len(body)-2]); err == nil {
		t.Fatal("truncated status accepted")
	}
}

// TestWireCRCMatchesStore pins the wire checksum to Castagnoli — the
// same polynomial the store's segment log uses — so a cross-check of
// the two framing layers stays meaningful.
func TestWireCRCMatchesStore(t *testing.T) {
	payload := []byte("polynomial pin")
	want := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	if got := crc32.Checksum(payload, castagnoli); got != want {
		t.Fatalf("wire CRC table is not Castagnoli: %08x != %08x", got, want)
	}
}
