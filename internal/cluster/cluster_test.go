package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/synth"
)

// Shared fixtures, built once per test binary: two small trained
// parsers saved as distinct WMDL artifacts (model distribution and
// rollout tests need real, CRC-verifiable bytes; everything else runs
// on fake parse functions).
var (
	artOnce      sync.Once
	artA, artB   []byte
	artAP, artBP *core.Parser
	artErr       error
)

func artifacts(t testing.TB) (a, b []byte) {
	t.Helper()
	artOnce.Do(func() {
		recs := synth.GenerateLabeled(synth.Config{N: 120, Seed: 23})
		dir, err := os.MkdirTemp("", "cluster-wmdl")
		if err != nil {
			artErr = err
			return
		}
		defer os.RemoveAll(dir)
		save := func(nTrain int, name string) ([]byte, *core.Parser, error) {
			p, _, err := core.Train(recs[:nTrain], core.DefaultConfig())
			if err != nil {
				return nil, nil, err
			}
			path := filepath.Join(dir, name)
			if err := store.SaveModel(p, path); err != nil {
				return nil, nil, err
			}
			data, err := os.ReadFile(path)
			return data, p, err
		}
		if artA, artAP, artErr = save(30, "a.wmdl"); artErr != nil {
			return
		}
		artB, artBP, artErr = save(60, "b.wmdl")
	})
	if artErr != nil {
		t.Fatal(artErr)
	}
	return artA, artB
}

// parsers returns the trained parsers behind the two artifacts.
func parsers(t testing.TB) (*core.Parser, *core.Parser) {
	t.Helper()
	artifacts(t)
	return artAP, artBP
}

// testNode builds a node over a fake parse function. LoadFactor -1
// disables bounded-load rerouting so ownership assertions are
// deterministic.
func testNode(t testing.TB, id string, fn serve.ParseFunc, opts Options) *Node {
	t.Helper()
	ps := serve.NewFunc(fn, serve.Options{Workers: 2})
	t.Cleanup(func() { ps.Close() })
	opts.ID = id
	if opts.Ring.LoadFactor == 0 {
		opts.Ring.LoadFactor = -1
	}
	n, err := NewNode(ps, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// link wires every node to every other node over the in-process
// transport.
func link(nodes ...*Node) {
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddPeer(b.ID(), &InprocClient{B: b})
			}
		}
	}
}

// echoParse fabricates a trivially recognizable record for text.
func echoParse(nodeID string) serve.ParseFunc {
	return func(text string) *core.ParsedRecord {
		return &core.ParsedRecord{DomainName: text, Registrar: nodeID}
	}
}

// domainOwnedBy finds a test domain whose ring owner is the wanted
// node.
func domainOwnedBy(t testing.TB, r *Ring, want string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		d := fmt.Sprintf("domain%d.com", i)
		if r.Lookup(d) == want {
			return d
		}
	}
	t.Fatalf("no domain hashed to %s in 10000 tries", want)
	return ""
}
