//go:build !race

package crf

const raceEnabled = false
