// Package crf implements the linear-chain conditional random field of the
// paper (§3.1, Appendix A): binary features over (previous label, label,
// line observations), a log-linear posterior over label sequences,
// forward–backward inference for the normalizer and marginals, Viterbi
// decoding, and maximum-likelihood training with L2 regularization via
// L-BFGS or SGD.
//
// Observations are small integer ids produced by a tokenize.Dictionary.
// The parameter vector θ is laid out densely in four contiguous blocks:
//
//	state:    θ[o*n + y]                        one weight per (obs, label)
//	bias:     θ[stateLen + y]                   one per label
//	trans:    θ[biasEnd + i*n + j]              one per (label, label)
//	transObs: θ[transBase + r*n*n + i*n + j]    per (transition obs, i, j)
//
// where n is the number of states and r ranks the subset of observations
// that participate in transition features (eq. 8 of the paper: features
// examining both y_{t-1} and y_t). At t = 0 transition features are
// skipped, matching the paper's footnote 8.
package crf

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tokenize"
)

// Instance is one token sequence ready for inference: per position, the
// dictionary ids of the active observations. Labels carries gold labels
// during training and may be nil at prediction time.
type Instance struct {
	Obs    [][]int
	Labels []int
}

// Config controls feature generation and regularization.
type Config struct {
	// NumStates is the size of the label space (6 or 12 in the paper).
	NumStates int
	// TransMinCount is the dictionary frequency an observation needs to
	// participate in transition features. Closed-class markers (NL, SEP,
	// SHL, SYM, CLS:*) always participate. A value <= 0 means every
	// dictionary observation participates (the paper's ~1M-feature
	// first-level CRF).
	TransMinCount int
	// DisableTransObs drops observation-conditioned transition features
	// entirely, leaving only the (i, j) label-bigram table. Used by the
	// ablation benchmarks.
	DisableTransObs bool
	// L2 is the coefficient of the 0.5·L2·‖θ‖² regularizer.
	L2 float64
}

// DefaultConfig returns the configuration used by the main experiments.
func DefaultConfig(numStates int) Config {
	return Config{NumStates: numStates, TransMinCount: 1, L2: 1.0}
}

// Model is a trained (or trainable) linear-chain CRF.
type Model struct {
	cfg  Config
	dict *tokenize.Dictionary

	theta []float64

	// transRank maps an observation id to its rank in the transition-
	// feature block, or -1 if the observation has no transition features.
	transRank []int
	numTrans  int

	stateLen  int // dict.Len() * n
	biasBase  int
	transBase int // start of the (i,j) bigram table
	tobsBase  int // start of the obs-conditioned transition block

	// scores caches per-line-shape score rows for the current theta; it is
	// swapped out wholesale on every theta mutation (see engine.go).
	scores atomic.Pointer[scoreCache]

	// met, when non-nil, receives decode latency and token throughput
	// (see Instrument). Set once before concurrent use.
	met *modelMetrics
}

// modelMetrics are the inference-path observability handles.
type modelMetrics struct {
	decodeSeconds *obs.Histogram
	decodes       *obs.Counter
	tokens        *obs.Counter
}

// Instrument wires the model's inference hot paths (Decode, Posterior)
// into reg under <prefix>.decode.seconds, <prefix>.decodes, and
// <prefix>.tokens — tokens being label positions decoded, so tokens/s is
// tokens ÷ decode.seconds sum. Call before the model is shared across
// goroutines; the recording itself is lock-free.
func (m *Model) Instrument(reg *obs.Registry, prefix string) {
	m.met = &modelMetrics{
		decodeSeconds: reg.Histogram(prefix+".decode.seconds", obs.DurationBounds()),
		decodes:       reg.Counter(prefix + ".decodes"),
		tokens:        reg.Counter(prefix + ".tokens"),
	}
}

// observeDecode records one inference pass over T positions.
func (m *Model) observeDecode(start time.Time, T int) {
	if m.met == nil {
		return
	}
	m.met.decodeSeconds.ObserveSince(start)
	m.met.decodes.Inc()
	m.met.tokens.Add(uint64(T))
}

// decodeStart returns the wall-clock start for observeDecode, avoiding
// the time.Now call entirely on uninstrumented models.
func (m *Model) decodeStart() time.Time {
	if m.met == nil {
		return time.Time{}
	}
	return time.Now()
}

// New builds an untrained model over the given dictionary. The feature
// space is fixed at construction: every dictionary entry gets state
// features, and entries passing TransMinCount (plus closed-class markers)
// additionally get transition features.
func New(dict *tokenize.Dictionary, cfg Config) *Model {
	if cfg.NumStates <= 0 {
		panic("crf: NumStates must be positive")
	}
	n := cfg.NumStates
	m := &Model{cfg: cfg, dict: dict}
	m.transRank = make([]int, dict.Len())
	for i := range m.transRank {
		m.transRank[i] = -1
	}
	if !cfg.DisableTransObs {
		for id := 0; id < dict.Len(); id++ {
			name := dict.Name(id)
			if cfg.TransMinCount <= 0 || dict.Count(id) >= cfg.TransMinCount || isClosedClassObs(name) {
				m.transRank[id] = m.numTrans
				m.numTrans++
			}
		}
	}
	m.stateLen = dict.Len() * n
	m.biasBase = m.stateLen
	m.transBase = m.biasBase + n
	m.tobsBase = m.transBase + n*n
	m.theta = make([]float64, m.tobsBase+m.numTrans*n*n)
	m.scores.Store(new(scoreCache))
	return m
}

func isClosedClassObs(name string) bool {
	switch name {
	case tokenize.MarkNL, tokenize.MarkSHL, tokenize.MarkSHR, tokenize.MarkSYM,
		tokenize.MarkSEP, tokenize.MarkNoV, tokenize.MarkBOL, tokenize.MarkEOL:
		return true
	}
	return len(name) > 4 && name[:4] == "CLS:"
}

// NumStates reports the label-space size.
func (m *Model) NumStates() int { return m.cfg.NumStates }

// NumFeatures reports the dimensionality of θ.
func (m *Model) NumFeatures() int { return len(m.theta) }

// NumTransObs reports how many observations carry transition features.
func (m *Model) NumTransObs() int { return m.numTrans }

// Dict exposes the model's observation dictionary.
func (m *Model) Dict() *tokenize.Dictionary { return m.dict }

// Theta exposes the raw parameter vector. Callers must treat it as
// read-only; Trainer mutates it during fitting.
func (m *Model) Theta() []float64 { return m.theta }

// SetTheta replaces the parameter vector; the length must match.
func (m *Model) SetTheta(theta []float64) error {
	if len(theta) != len(m.theta) {
		return fmt.Errorf("crf: SetTheta length %d, want %d", len(theta), len(m.theta))
	}
	copy(m.theta, theta)
	m.invalidateScores()
	return nil
}

// MapLines converts tokenized lines into an Instance using the model's
// dictionary. Unknown observations are dropped.
func (m *Model) MapLines(lines []tokenize.Line) Instance {
	obs := make([][]int, len(lines))
	for i, ln := range lines {
		obs[i] = m.dict.MapLine(ln)
	}
	return Instance{Obs: obs}
}

// stateScores fills dst (length n) with the emission score of each label
// at a position with the given observations, using theta.
func (m *Model) stateScores(theta []float64, obs []int, dst []float64) {
	n := m.cfg.NumStates
	for y := 0; y < n; y++ {
		dst[y] = theta[m.biasBase+y]
	}
	for _, o := range obs {
		base := o * n
		for y := 0; y < n; y++ {
			dst[y] += theta[base+y]
		}
	}
}

// transScores fills dst (length n*n, row = previous label) with the
// transition score into a position with the given observations.
func (m *Model) transScores(theta []float64, obs []int, dst []float64) {
	n := m.cfg.NumStates
	copy(dst, theta[m.transBase:m.transBase+n*n])
	if m.numTrans == 0 {
		return
	}
	for _, o := range obs {
		r := m.transRank[o]
		if r < 0 {
			continue
		}
		base := m.tobsBase + r*n*n
		for k := 0; k < n*n; k++ {
			dst[k] += theta[base+k]
		}
	}
}

// modelDTO is the gob-serializable snapshot of a Model.
type modelDTO struct {
	Cfg       Config
	DictNames []string
	DictCount []int
	Theta     []float64
}

// WriteTo serializes the model (configuration, dictionary, parameters).
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	dto := modelDTO{Cfg: m.cfg, Theta: m.theta}
	dto.DictNames = make([]string, m.dict.Len())
	dto.DictCount = make([]int, m.dict.Len())
	for i := 0; i < m.dict.Len(); i++ {
		dto.DictNames[i] = m.dict.Name(i)
		dto.DictCount[i] = m.dict.Count(i)
	}
	cw := &countWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(dto); err != nil {
		return cw.n, fmt.Errorf("crf: encode model: %w", err)
	}
	return cw.n, nil
}

// Read deserializes a model written by WriteTo.
func Read(r io.Reader) (*Model, error) {
	var dto modelDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("crf: decode model: %w", err)
	}
	dict, err := dictFromLists(dto.DictNames, dto.DictCount)
	if err != nil {
		return nil, err
	}
	m := New(dict, dto.Cfg)
	if err := m.SetTheta(dto.Theta); err != nil {
		return nil, err
	}
	return m, nil
}

func dictFromLists(names []string, counts []int) (*tokenize.Dictionary, error) {
	if len(names) != len(counts) {
		return nil, fmt.Errorf("crf: dictionary names/counts length mismatch")
	}
	var sb sortBuilder
	for i, name := range names {
		sb.add(counts[i], name)
	}
	return sb.build()
}

// sortBuilder reconstructs a Dictionary via its text round-trip, which is
// the only public constructor that preserves explicit ids.
type sortBuilder struct {
	lines []string
}

func (b *sortBuilder) add(count int, name string) {
	b.lines = append(b.lines, fmt.Sprintf("%d\t%s", count, name))
}

func (b *sortBuilder) build() (*tokenize.Dictionary, error) {
	return tokenize.ReadDictionary(newStringsReader(b.lines))
}

type stringsReader struct {
	lines []string
	cur   []byte
}

func newStringsReader(lines []string) *stringsReader { return &stringsReader{lines: lines} }

func (r *stringsReader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if len(r.lines) == 0 {
			return 0, io.EOF
		}
		r.cur = append([]byte(r.lines[0]), '\n')
		r.lines = r.lines[1:]
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WeightedObs pairs an observation name with a learned weight, for model
// introspection (Table 1 / Figure 1 of the paper).
type WeightedObs struct {
	Obs    string
	Weight float64
}

// TopStateFeatures returns the k highest-weighted emission observations
// for the given label, mirroring Table 1.
func (m *Model) TopStateFeatures(label, k int) []WeightedObs {
	n := m.cfg.NumStates
	out := make([]WeightedObs, 0, m.dict.Len())
	for o := 0; o < m.dict.Len(); o++ {
		out = append(out, WeightedObs{Obs: m.dict.Name(o), Weight: m.theta[o*n+label]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// TransFeature describes one observation-conditioned transition weight,
// for Figure 1-style introspection.
type TransFeature struct {
	Obs      string
	From, To int
	Weight   float64
}

// TopTransitionFeatures returns the k highest-weighted observation-
// conditioned transition features between distinct labels.
func (m *Model) TopTransitionFeatures(k int) []TransFeature {
	n := m.cfg.NumStates
	var out []TransFeature
	for o := 0; o < m.dict.Len(); o++ {
		r := m.transRank[o]
		if r < 0 {
			continue
		}
		base := m.tobsBase + r*n*n
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				w := m.theta[base+i*n+j]
				if w != 0 {
					out = append(out, TransFeature{Obs: m.dict.Name(o), From: i, To: j, Weight: w})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	if k < len(out) {
		out = out[:k]
	}
	return out
}
