package crf

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/tokenize"
)

// makeDict builds a dictionary over synthetic observation names o0..o{n-1}
// plus the closed-class markers.
func makeDict(t testing.TB, nObs int) *tokenize.Dictionary {
	t.Helper()
	var lines [][]tokenize.Line
	var rec []tokenize.Line
	for i := 0; i < nObs; i++ {
		rec = append(rec, tokenize.Line{Obs: []string{obsName(i)}})
	}
	rec = append(rec, tokenize.Line{Obs: []string{tokenize.MarkNL, tokenize.MarkSEP}})
	lines = append(lines, rec)
	return tokenize.BuildDictionary(lines, 1)
}

func obsName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// randomInstance builds a length-T instance over a dictionary.
func randomInstance(rng *rand.Rand, dict *tokenize.Dictionary, T, nStates int, labeled bool) Instance {
	inst := Instance{Obs: make([][]int, T)}
	for t := 0; t < T; t++ {
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			inst.Obs[t] = append(inst.Obs[t], rng.Intn(dict.Len()))
		}
	}
	if labeled {
		inst.Labels = make([]int, T)
		for t := range inst.Labels {
			inst.Labels[t] = rng.Intn(nStates)
		}
	}
	return inst
}

func randomModel(rng *rand.Rand, dict *tokenize.Dictionary, nStates int) *Model {
	m := New(dict, Config{NumStates: nStates, TransMinCount: 1, L2: 0})
	theta := make([]float64, m.NumFeatures())
	for i := range theta {
		theta[i] = rng.NormFloat64() * 0.5
	}
	if err := m.SetTheta(theta); err != nil {
		panic(err)
	}
	return m
}

// enumerate all label sequences of length T over n states.
func enumerate(T, n int) [][]int {
	if T == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for _, tail := range enumerate(T-1, n) {
		for y := 0; y < n; y++ {
			seq := append([]int{y}, tail...)
			out = append(out, seq)
		}
	}
	return out
}

func TestLogZMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dict := makeDict(t, 10)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		T := 1 + rng.Intn(4)
		m := randomModel(rng, dict, n)
		inst := randomInstance(rng, dict, T, n, false)
		var brute float64 = mathx.NegInf
		for _, y := range enumerate(T, n) {
			brute = mathx.LogSumExp(brute, m.SequenceScore(inst, y))
		}
		if got := m.LogZ(inst); math.Abs(got-brute) > 1e-8 {
			t.Fatalf("trial %d: LogZ=%v brute=%v (n=%d T=%d)", trial, got, brute, n, T)
		}
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dict := makeDict(t, 10)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		T := 1 + rng.Intn(4)
		m := randomModel(rng, dict, n)
		inst := randomInstance(rng, dict, T, n, false)
		bestScore := mathx.NegInf
		for _, y := range enumerate(T, n) {
			if s := m.SequenceScore(inst, y); s > bestScore {
				bestScore = s
			}
		}
		path, score := m.Decode(inst)
		if len(path) != T {
			t.Fatalf("trial %d: path length %d, want %d", trial, len(path), T)
		}
		if math.Abs(score-bestScore) > 1e-8 {
			t.Fatalf("trial %d: viterbi score %v, brute force max %v", trial, score, bestScore)
		}
		if s := m.SequenceScore(inst, path); math.Abs(s-score) > 1e-8 {
			t.Fatalf("trial %d: path rescored to %v, viterbi said %v", trial, s, score)
		}
	}
}

func TestMarginalsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dict := makeDict(t, 12)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		T := 1 + rng.Intn(6)
		m := randomModel(rng, dict, n)
		inst := randomInstance(rng, dict, T, n, false)
		marg := m.Marginals(inst)
		for tt := 0; tt < T; tt++ {
			var sum float64
			for j := 0; j < n; j++ {
				if marg[tt][j] < -1e-12 || marg[tt][j] > 1+1e-9 {
					t.Fatalf("marginal out of range: %v", marg[tt][j])
				}
				sum += marg[tt][j]
			}
			if math.Abs(sum-1) > 1e-8 {
				t.Fatalf("trial %d: marginals at %d sum to %v", trial, tt, sum)
			}
		}
	}
}

func TestEdgeMarginalsConsistentWithNodeMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dict := makeDict(t, 12)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3)
		T := 2 + rng.Intn(4)
		m := randomModel(rng, dict, n)
		inst := randomInstance(rng, dict, T, n, false)
		node := m.Marginals(inst)
		edge := m.EdgeMarginals(inst)
		for tt := 1; tt < T; tt++ {
			for j := 0; j < n; j++ {
				var sum float64
				for i := 0; i < n; i++ {
					sum += edge[tt][i*n+j]
				}
				if math.Abs(sum-node[tt][j]) > 1e-7 {
					t.Fatalf("trial %d t=%d j=%d: edge row-sum %v != node marginal %v",
						trial, tt, j, sum, node[tt][j])
				}
			}
		}
	}
}

func TestLogProbNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dict := makeDict(t, 8)
	n, T := 3, 3
	m := randomModel(rng, dict, n)
	inst := randomInstance(rng, dict, T, n, false)
	var total float64
	for _, y := range enumerate(T, n) {
		total += math.Exp(m.LogProb(inst, y))
	}
	if math.Abs(total-1) > 1e-8 {
		t.Fatalf("posterior sums to %v over all sequences", total)
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dict := makeDict(t, 6)
	n := 3
	m := New(dict, Config{NumStates: n, TransMinCount: 1, L2: 0})
	insts := []Instance{
		randomInstance(rng, dict, 4, n, true),
		randomInstance(rng, dict, 2, n, true),
	}
	theta := make([]float64, m.NumFeatures())
	for i := range theta {
		theta[i] = rng.NormFloat64() * 0.3
	}

	obj := m.newBatchObjective(insts, 1)
	grad := make([]float64, len(theta))
	v0 := obj.Eval(theta, grad)

	const h = 1e-6
	checked := 0
	for i := 0; i < len(theta); i += 1 + rng.Intn(7) {
		tp := mathx.Clone(theta)
		tp[i] += h
		vp := obj.Eval(tp, make([]float64, len(theta)))
		numeric := (vp - v0) / h
		if math.Abs(numeric-grad[i]) > 1e-3*(1+math.Abs(numeric)) {
			t.Fatalf("grad[%d]: analytic %v, numeric %v", i, grad[i], numeric)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only checked %d gradient entries", checked)
	}
}

func TestGradientWithL2MatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dict := makeDict(t, 5)
	n := 2
	m := New(dict, Config{NumStates: n, TransMinCount: 1, L2: 0.7})
	insts := []Instance{randomInstance(rng, dict, 3, n, true)}
	theta := make([]float64, m.NumFeatures())
	for i := range theta {
		theta[i] = rng.NormFloat64() * 0.3
	}
	obj := m.newBatchObjective(insts, 1)
	grad := make([]float64, len(theta))
	v0 := obj.Eval(theta, grad)
	const h = 1e-6
	for i := 0; i < len(theta); i += 3 {
		tp := mathx.Clone(theta)
		tp[i] += h
		vp := obj.Eval(tp, make([]float64, len(theta)))
		numeric := (vp - v0) / h
		if math.Abs(numeric-grad[i]) > 1e-3*(1+math.Abs(numeric)) {
			t.Fatalf("grad[%d] with L2: analytic %v, numeric %v", i, grad[i], numeric)
		}
	}
}

func TestParallelGradientMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	dict := makeDict(t, 10)
	n := 4
	m := New(dict, Config{NumStates: n, TransMinCount: 1, L2: 0.5})
	var insts []Instance
	for i := 0; i < 13; i++ {
		insts = append(insts, randomInstance(rng, dict, 1+rng.Intn(6), n, true))
	}
	theta := make([]float64, m.NumFeatures())
	for i := range theta {
		theta[i] = rng.NormFloat64() * 0.2
	}
	serial := m.newBatchObjective(insts, 1)
	parallel := m.newBatchObjective(insts, 4)
	g1 := make([]float64, len(theta))
	g2 := make([]float64, len(theta))
	v1 := serial.Eval(theta, g1)
	v2 := parallel.Eval(theta, g2)
	if math.Abs(v1-v2) > 1e-9*(1+math.Abs(v1)) {
		t.Fatalf("values differ: serial %v, parallel %v", v1, v2)
	}
	for i := range g1 {
		if math.Abs(g1[i]-g2[i]) > 1e-9 {
			t.Fatalf("grad[%d] differs: serial %v, parallel %v", i, g1[i], g2[i])
		}
	}
}

// trainToy builds a tiny separable sequence-labeling task: observation oK
// deterministically indicates label K, with a slight transition pattern.
func trainToy(t *testing.T, method string) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(15))
	dict := makeDict(t, 6)
	n := 3
	m := New(dict, Config{NumStates: n, TransMinCount: 1, L2: 0.1})
	var insts []Instance
	for r := 0; r < 40; r++ {
		T := 3 + rng.Intn(4)
		inst := Instance{Obs: make([][]int, T), Labels: make([]int, T)}
		for tt := 0; tt < T; tt++ {
			y := rng.Intn(n)
			inst.Labels[tt] = y
			id, ok := dict.ID(obsName(y))
			if !ok {
				t.Fatal("dictionary missing toy observation")
			}
			inst.Obs[tt] = []int{id, rng.Intn(dict.Len())}
		}
		insts = append(insts, inst)
	}
	if _, err := m.Train(insts, TrainConfig{Method: method}); err != nil {
		t.Fatal(err)
	}
	// The trained model must decode held-out separable data perfectly.
	for r := 0; r < 10; r++ {
		T := 4
		inst := Instance{Obs: make([][]int, T)}
		want := make([]int, T)
		for tt := 0; tt < T; tt++ {
			y := rng.Intn(n)
			want[tt] = y
			id, _ := dict.ID(obsName(y))
			inst.Obs[tt] = []int{id}
		}
		got, _ := m.Decode(inst)
		for tt := range want {
			if got[tt] != want[tt] {
				t.Fatalf("method %s: decode %v, want %v", method, got, want)
			}
		}
	}
	return m
}

func TestTrainLBFGSSeparable(t *testing.T) { trainToy(t, "lbfgs") }
func TestTrainSGDSeparable(t *testing.T)   { trainToy(t, "sgd") }

func TestTrainRejectsBadLabels(t *testing.T) {
	dict := makeDict(t, 3)
	m := New(dict, Config{NumStates: 2})
	bad := Instance{Obs: [][]int{{0}}, Labels: []int{5}}
	if _, err := m.Train([]Instance{bad}, TrainConfig{}); err == nil {
		t.Fatal("expected out-of-range label error")
	}
	short := Instance{Obs: [][]int{{0}, {1}}, Labels: []int{0}}
	if _, err := m.Train([]Instance{short}, TrainConfig{}); err == nil {
		t.Fatal("expected label/position mismatch error")
	}
	if _, err := m.Train(nil, TrainConfig{Method: "nope"}); err == nil {
		t.Fatal("expected unknown method error")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m := trainToy(t, "lbfgs")
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumStates() != m.NumStates() || m2.NumFeatures() != m.NumFeatures() {
		t.Fatalf("shape mismatch after round trip: %d/%d vs %d/%d",
			m2.NumStates(), m2.NumFeatures(), m.NumStates(), m.NumFeatures())
	}
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(rng, m.Dict(), 5, m.NumStates(), false)
		p1, s1 := m.Decode(inst)
		p2, s2 := m2.Decode(inst)
		if math.Abs(s1-s2) > 1e-12 {
			t.Fatalf("scores differ after round trip: %v vs %v", s1, s2)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("paths differ after round trip")
			}
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	dict := makeDict(t, 3)
	m := New(dict, Config{NumStates: 2})
	path, score := m.Decode(Instance{})
	if len(path) != 0 || score != 0 {
		t.Errorf("empty decode: path=%v score=%v", path, score)
	}
	if z := m.LogZ(Instance{}); z != 0 {
		t.Errorf("empty LogZ = %v", z)
	}
	if marg := m.Marginals(Instance{}); marg != nil {
		t.Errorf("empty marginals = %v", marg)
	}
}

func TestDisableTransObs(t *testing.T) {
	dict := makeDict(t, 10)
	full := New(dict, Config{NumStates: 3, TransMinCount: 1})
	bare := New(dict, Config{NumStates: 3, DisableTransObs: true})
	if bare.NumTransObs() != 0 {
		t.Errorf("DisableTransObs left %d transition observations", bare.NumTransObs())
	}
	if full.NumTransObs() == 0 {
		t.Error("full model has no transition observations")
	}
	if bare.NumFeatures() >= full.NumFeatures() {
		t.Errorf("bare model should have fewer features: %d vs %d",
			bare.NumFeatures(), full.NumFeatures())
	}
}

func TestTransMinCountGatesFeatures(t *testing.T) {
	// Build a dictionary with one frequent and one rare observation.
	recs := [][]tokenize.Line{{
		{Obs: []string{"frequent", "frequent", "frequent", "rare"}},
	}}
	dict := tokenize.BuildDictionary(recs, 1)
	m := New(dict, Config{NumStates: 2, TransMinCount: 2})
	freqID, _ := dict.ID("frequent")
	rareID, _ := dict.ID("rare")
	if m.transRank[freqID] < 0 {
		t.Error("frequent observation should carry transition features")
	}
	if m.transRank[rareID] >= 0 {
		t.Error("rare observation should not carry transition features")
	}
}

func TestTopStateFeaturesOrdered(t *testing.T) {
	m := trainToy(t, "lbfgs")
	top := m.TopStateFeatures(0, 5)
	if len(top) != 5 {
		t.Fatalf("got %d features, want 5", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Fatalf("weights not sorted: %v", top)
		}
	}
	// The defining observation of state 0 should rank first.
	if top[0].Obs != obsName(0) {
		t.Errorf("top feature for state 0 is %q, want %q", top[0].Obs, obsName(0))
	}
}

func TestViterbiPathIsModePropertyBased(t *testing.T) {
	dict := makeDict(t, 8)
	rng := rand.New(rand.NewSource(17))
	f := func(seedRaw int64) bool {
		srng := rand.New(rand.NewSource(seedRaw))
		n := 2 + srng.Intn(2)
		T := 1 + srng.Intn(3)
		m := randomModel(srng, dict, n)
		inst := randomInstance(srng, dict, T, n, false)
		path, _ := m.Decode(inst)
		pathLP := m.LogProb(inst, path)
		// No random sequence may beat the Viterbi path.
		for k := 0; k < 10; k++ {
			y := make([]int, T)
			for i := range y {
				y[i] = rng.Intn(n)
			}
			if m.LogProb(inst, y) > pathLP+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSetThetaLengthMismatch(t *testing.T) {
	dict := makeDict(t, 3)
	m := New(dict, Config{NumStates: 2})
	if err := m.SetTheta(make([]float64, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestLogProbConsistentWithScoreAndZ(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	dict := makeDict(t, 8)
	m := randomModel(rng, dict, 3)
	inst := randomInstance(rng, dict, 4, 3, false)
	y := []int{0, 1, 2, 1}
	lp := m.LogProb(inst, y)
	want := m.SequenceScore(inst, y) - m.LogZ(inst)
	if math.Abs(lp-want) > 1e-9 {
		t.Fatalf("LogProb %v, score-logZ %v", lp, want)
	}
	if lp > 1e-9 {
		t.Fatalf("log probability %v > 0", lp)
	}
}

func TestTransMinCountZeroMeansAll(t *testing.T) {
	dict := makeDict(t, 10)
	m := New(dict, Config{NumStates: 2, TransMinCount: 0})
	if m.NumTransObs() != dict.Len() {
		t.Errorf("TransMinCount 0 should gate nothing: %d of %d", m.NumTransObs(), dict.Len())
	}
}

func TestIntrospectionSurvivesSerialization(t *testing.T) {
	m := trainToy(t, "lbfgs")
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := m.TopStateFeatures(1, 3)
	b := m2.TopStateFeatures(1, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("introspection differs after round trip: %v vs %v", a, b)
		}
	}
}

func TestTrainNoInstances(t *testing.T) {
	dict := makeDict(t, 3)
	m := New(dict, Config{NumStates: 2, L2: 1})
	res, err := m.Train(nil, TrainConfig{})
	if err != nil {
		t.Fatalf("training on zero instances should be a no-op: %v", err)
	}
	if !res.Converged {
		t.Error("empty objective should converge immediately")
	}
	for _, th := range m.Theta() {
		if th != 0 {
			t.Fatal("weights moved with no data")
		}
	}
}
