package crf

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/mathx"
	"repro/internal/optimize"
)

// TrainConfig selects the optimizer and its settings.
type TrainConfig struct {
	// Method is "lbfgs" (default) or "sgd".
	Method string
	// LBFGS settings; zero value means optimize.DefaultLBFGSConfig.
	LBFGS optimize.LBFGSConfig
	// SGD settings; zero value means optimize.DefaultSGDConfig.
	SGD optimize.SGDConfig
	// Workers bounds the goroutines used for batch gradient evaluation.
	// Zero means GOMAXPROCS.
	Workers int
}

// Train estimates θ by maximizing the L2-regularized conditional
// log-likelihood of the labeled instances (eq. 4 plus 0.5·λ‖θ‖²,
// minimized as its negation). The instances must carry Labels.
func (m *Model) Train(insts []Instance, cfg TrainConfig) (optimize.Result, error) {
	for i, inst := range insts {
		if len(inst.Labels) != len(inst.Obs) {
			return optimize.Result{}, fmt.Errorf("crf: instance %d: %d labels for %d positions", i, len(inst.Labels), len(inst.Obs))
		}
		for _, y := range inst.Labels {
			if y < 0 || y >= m.cfg.NumStates {
				return optimize.Result{}, fmt.Errorf("crf: instance %d: label %d out of range [0,%d)", i, y, m.cfg.NumStates)
			}
		}
	}
	switch cfg.Method {
	case "", "lbfgs":
		lcfg := cfg.LBFGS
		if lcfg.MaxIterations == 0 && lcfg.History == 0 {
			lcfg = optimize.DefaultLBFGSConfig()
		}
		obj := m.newBatchObjective(insts, cfg.Workers)
		res, err := optimize.LBFGS(obj, m.theta, lcfg)
		if err != nil {
			return res, fmt.Errorf("crf: lbfgs: %w", err)
		}
		copy(m.theta, res.X)
		m.invalidateScores()
		return res, nil
	case "sgd":
		scfg := cfg.SGD
		if scfg.Epochs == 0 && scfg.Eta0 == 0 {
			scfg = optimize.DefaultSGDConfig()
		}
		// The regularizer is applied by the optimizer as fused weight decay
		// (one multiply inside the update pass) rather than by walking full
		// θ inside every EvalExample; see optimize.SGDConfig.WeightDecay.
		if m.cfg.L2 > 0 && len(insts) > 0 {
			scfg.WeightDecay = m.cfg.L2 / float64(len(insts))
		}
		obj := &sgdObjective{m: m, insts: insts}
		res, err := optimize.SGD(obj, m.theta, scfg)
		if err != nil {
			return res, fmt.Errorf("crf: sgd: %w", err)
		}
		copy(m.theta, res.X)
		m.invalidateScores()
		return res, nil
	default:
		return optimize.Result{}, fmt.Errorf("crf: unknown training method %q", cfg.Method)
	}
}

// instanceNLL computes the negative log-likelihood of one instance at
// theta and accumulates its gradient (expected minus observed feature
// counts) into grad. All dynamic-programming tables live in the caller-
// provided scratch, so the training loop reuses the same buffers across
// every gradient evaluation.
func (m *Model) instanceNLL(s *scratch, theta []float64, inst Instance, grad []float64) float64 {
	n := m.cfg.NumStates
	T := len(inst.Obs)
	if T == 0 {
		return 0
	}
	m.fillLattice(s, theta, inst, nil)
	lat := &s.lat
	forwardInto(lat, s.alpha, s.buf)
	backwardInto(lat, s.beta, s.buf)
	alpha, beta := s.alpha, s.beta
	logZ := mathx.LogSumExpSlice(alpha[(T-1)*n : T*n])
	gold := latticeSeqScore(lat, inst.Labels)
	nll := logZ - gold

	if grad == nil {
		return nll
	}

	// Node terms: expected - observed emission counts.
	prob := s.prob[:n]
	for t := 0; t < T; t++ {
		var norm float64
		for j := 0; j < n; j++ {
			p := expSafe(alpha[t*n+j] + beta[t*n+j] - logZ)
			prob[j] = p
			norm += p
		}
		// Guard against drift: renormalize so gradients stay consistent.
		if norm > 0 {
			for j := 0; j < n; j++ {
				prob[j] /= norm
			}
		}
		prob[inst.Labels[t]] -= 1
		for j := 0; j < n; j++ {
			p := prob[j]
			if p == 0 {
				continue
			}
			grad[m.biasBase+j] += p
			for _, o := range inst.Obs[t] {
				grad[o*n+j] += p
			}
		}
	}

	// Edge terms: expected - observed transition counts.
	edge := s.edge[:n*n]
	for t := 1; t < T; t++ {
		tr := lat.transRow(t)
		st := lat.stateRow(t)
		var norm float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := expSafe(alpha[(t-1)*n+i] + tr[i*n+j] + st[j] + beta[t*n+j] - logZ)
				edge[i*n+j] = p
				norm += p
			}
		}
		if norm > 0 {
			for k := range edge {
				edge[k] /= norm
			}
		}
		edge[inst.Labels[t-1]*n+inst.Labels[t]] -= 1
		for k, p := range edge {
			if p == 0 {
				continue
			}
			grad[m.transBase+k] += p
		}
		for _, o := range inst.Obs[t] {
			r := m.transRank[o]
			if r < 0 {
				continue
			}
			base := m.tobsBase + r*n*n
			for k, p := range edge {
				if p != 0 {
					grad[base+k] += p
				}
			}
		}
	}
	return nll
}

func expSafe(x float64) float64 {
	if x > 0 {
		x = 0 // marginal log-probabilities are <= 0 up to rounding
	}
	if x < -745 {
		return 0
	}
	return math.Exp(x)
}

// batchObjective is the full-batch regularized NLL with parallel
// per-instance evaluation, as the paper's parallel L-BFGS requires.
type batchObjective struct {
	m       *Model
	insts   []Instance
	workers int

	mu        sync.Mutex
	grads     [][]float64 // per-worker scratch gradients, reused across Evals
	scratches []*scratch  // per-worker inference scratch, reused across Evals
}

func (m *Model) newBatchObjective(insts []Instance, workers int) *batchObjective {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(insts) && len(insts) > 0 {
		workers = len(insts)
	}
	if workers < 1 {
		workers = 1
	}
	return &batchObjective{m: m, insts: insts, workers: workers}
}

func (b *batchObjective) Dim() int { return len(b.m.theta) }

func (b *batchObjective) Eval(theta, grad []float64) float64 {
	mathx.Fill(grad, 0)
	if len(b.grads) != b.workers {
		b.grads = make([][]float64, b.workers)
		b.scratches = make([]*scratch, b.workers)
		for w := range b.grads {
			b.grads[w] = make([]float64, len(theta))
			b.scratches[w] = new(scratch)
		}
	}
	values := make([]float64, b.workers)
	var wg sync.WaitGroup
	for w := 0; w < b.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := b.grads[w]
			s := b.scratches[w]
			mathx.Fill(g, 0)
			var v float64
			for i := w; i < len(b.insts); i += b.workers {
				v += b.m.instanceNLL(s, theta, b.insts[i], g)
			}
			values[w] = v
		}(w)
	}
	wg.Wait()
	var total float64
	for w := 0; w < b.workers; w++ {
		total += values[w]
		mathx.AXPY(1, b.grads[w], grad)
	}
	// L2 regularizer.
	l2 := b.m.cfg.L2
	if l2 > 0 {
		var reg float64
		for i, th := range theta {
			reg += th * th
			grad[i] += l2 * th
		}
		total += 0.5 * l2 * reg
	}
	return total
}

// sgdObjective adapts per-instance NLL to optimize.StochasticObjective.
// It evaluates the data term only: the L2 regularizer is handled by the
// optimizer's WeightDecay (set in Train), which folds the decay into the
// update pass instead of scanning full θ here on every example.
type sgdObjective struct {
	m       *Model
	insts   []Instance
	scratch scratch
}

func (s *sgdObjective) Dim() int         { return len(s.m.theta) }
func (s *sgdObjective) NumExamples() int { return len(s.insts) }

func (s *sgdObjective) EvalExample(i int, theta, grad []float64) float64 {
	return s.m.instanceNLL(&s.scratch, theta, s.insts[i], grad)
}
