package crf

// WarmStartFrom copies into m every parameter of old whose feature also
// exists in m, matching observations by dictionary name. The §5.3
// maintenance loop retrains after adding a handful of labeled examples;
// warm-starting from the previous model's weights makes those retrains
// converge in a fraction of the iterations, because only the features the
// new examples introduce start from zero.
//
// Models must share NumStates; everything else (dictionary contents,
// transition gating) may differ.
func (m *Model) WarmStartFrom(old *Model) {
	if old == nil || old.cfg.NumStates != m.cfg.NumStates {
		return
	}
	defer m.invalidateScores()
	n := m.cfg.NumStates

	// Bias and label-bigram blocks are position-compatible.
	copy(m.theta[m.biasBase:m.biasBase+n], old.theta[old.biasBase:old.biasBase+n])
	copy(m.theta[m.transBase:m.transBase+n*n], old.theta[old.transBase:old.transBase+n*n])

	// Emission and observation-conditioned transition blocks match by
	// observation name.
	for newID := 0; newID < m.dict.Len(); newID++ {
		oldID, ok := old.dict.ID(m.dict.Name(newID))
		if !ok {
			continue
		}
		copy(m.theta[newID*n:(newID+1)*n], old.theta[oldID*n:(oldID+1)*n])

		newRank := m.transRank[newID]
		oldRank := old.transRank[oldID]
		if newRank >= 0 && oldRank >= 0 {
			dst := m.tobsBase + newRank*n*n
			src := old.tobsBase + oldRank*n*n
			copy(m.theta[dst:dst+n*n], old.theta[src:src+n*n])
		}
	}
}
