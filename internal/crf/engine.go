package crf

import (
	"sync"
	"sync/atomic"

	"repro/internal/mathx"
)

// This file implements the reusable inference engine: a pooled scratch
// type holding flat backing arrays for the lattice and every dynamic-
// programming table, plus memoization of per-position score rows keyed by
// the observation-id signature of the line. WHOIS records are template-
// generated (§2.3), so a survey-scale workload sees a tiny set of distinct
// line shapes; caching the score rows turns the dominant
// O(T·|obs|·n²) lattice build into O(distinct·|obs|·n²) plus copies.
//
// Memoization invariants:
//   - A cached row is the byte-for-byte output of the direct computation
//     (same accumulation order), so cached and uncached inference agree
//     bit-identically. The differential tests in engine_test.go assert it.
//   - The model-level cache is only consulted for inference at the model's
//     own weights and is dropped whenever θ changes (SetTheta, Train,
//     WarmStartFrom). It is never valid across theta updates.
//   - With an explicit theta (the training loop), only the per-instance
//     memo inside the scratch is used, which cannot outlive the lattice
//     it was built for.

// lattice holds the per-position score tables for one instance as flat
// backing arrays. All scores are in the log domain.
type lattice struct {
	n     int
	T     int
	state []float64 // [t*n + y]
	trans []float64 // [t*n*n + i*n + j], meaningful for t >= 1
}

func (l *lattice) stateRow(t int) []float64 { return l.state[t*l.n : (t+1)*l.n] }

func (l *lattice) transRow(t int) []float64 {
	nn := l.n * l.n
	return l.trans[t*nn : (t+1)*nn]
}

// memoEntry records where within the current instance a given observation
// signature was first scored. tTrans is -1 until a transition row has been
// computed for the signature (position 0 has no transition row).
type memoEntry struct {
	hash   uint64
	tState int32
	tTrans int32
}

// scratch bundles every buffer inference and training need, so that
// steady-state Decode/Marginals/Posterior/instanceNLL run without heap
// allocations. Obtain one with getScratch and return it with putScratch,
// or hold one per worker goroutine.
type scratch struct {
	lat   lattice
	alpha []float64 // [t*n + j] forward scores
	beta  []float64 // [t*n + j] backward scores
	back  []int32   // [t*n + j] Viterbi backpointers
	v     []float64 // n
	vNext []float64 // n
	buf   []float64 // n log-sum-exp scratch
	prob  []float64 // n gradient node buffer
	edge  []float64 // n*n gradient edge buffer
	memo  []memoEntry
}

// ensure sizes every buffer for a T×n problem, reusing backing arrays
// whenever they are already large enough, and resets the per-instance memo.
func (s *scratch) ensure(T, n int) {
	s.lat.n, s.lat.T = n, T
	s.lat.state = growF64(s.lat.state, T*n)
	s.lat.trans = growF64(s.lat.trans, T*n*n)
	s.alpha = growF64(s.alpha, T*n)
	s.beta = growF64(s.beta, T*n)
	s.back = growI32(s.back, T*n)
	s.v = growF64(s.v, n)
	s.vNext = growF64(s.vNext, n)
	s.buf = growF64(s.buf, n)
	s.prob = growF64(s.prob, n)
	s.edge = growF64(s.edge, n*n)
	s.memo = s.memo[:0]
}

func growF64(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

func growI32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// obsSignature hashes a position's observation ids (FNV-1a over the id
// words plus the length) into the memo/cache key.
func obsSignature(obs []int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, o := range obs {
		h ^= uint64(o)
		h *= prime
	}
	h ^= uint64(len(obs))
	h *= prime
	return h
}

func obsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// maxScoreCacheEntries bounds the model-level cache. At the paper's
// 6- and 12-state label spaces one entry is a few hundred bytes, so the
// cap keeps the cache in the low megabytes while covering far more line
// shapes than real WHOIS templates produce.
const maxScoreCacheEntries = 1 << 13

// scoreEntry caches the state and transition score rows of one line shape.
// Entries are immutable once published.
type scoreEntry struct {
	obs   []int
	state []float64 // n
	trans []float64 // n*n
}

// scoreCache memoizes score rows across records for a fixed θ. Reads are
// lock-free (sync.Map); a hash collision (different obs, same signature)
// is treated as a miss so correctness never depends on hash quality.
type scoreCache struct {
	entries sync.Map // uint64 -> *scoreEntry
	count   atomic.Int64
}

func (c *scoreCache) lookup(sig uint64, obs []int) (*scoreEntry, bool) {
	v, ok := c.entries.Load(sig)
	if !ok {
		return nil, false
	}
	e := v.(*scoreEntry)
	if !obsEqual(e.obs, obs) {
		return nil, false
	}
	return e, true
}

func (c *scoreCache) insert(sig uint64, obs []int, state, trans []float64) {
	if c.count.Load() >= maxScoreCacheEntries {
		return
	}
	e := &scoreEntry{
		obs:   append([]int(nil), obs...),
		state: append([]float64(nil), state...),
		trans: append([]float64(nil), trans...),
	}
	if _, loaded := c.entries.LoadOrStore(sig, e); !loaded {
		c.count.Add(1)
	}
}

// curCache returns the cache valid for the model's current θ.
func (m *Model) curCache() *scoreCache { return m.scores.Load() }

// invalidateScores drops all cached score rows; every θ mutation must call
// it (see the memoization invariants above).
func (m *Model) invalidateScores() { m.scores.Store(new(scoreCache)) }

// fillLattice populates s.lat for inst at theta. With a non-nil cache
// (inference at the model's own weights) score rows are shared across
// records; otherwise repeated observation signatures within the instance
// are detected and their rows copied. Both paths reproduce the direct
// computation bit-for-bit, because every cached row is the direct
// computation's output copied verbatim.
func (m *Model) fillLattice(s *scratch, theta []float64, inst Instance, cache *scoreCache) {
	n := m.cfg.NumStates
	T := len(inst.Obs)
	s.ensure(T, n)
	lat := &s.lat
	for t := 0; t < T; t++ {
		obs := inst.Obs[t]
		sig := obsSignature(obs)
		st := lat.stateRow(t)
		if cache != nil {
			if e, ok := cache.lookup(sig, obs); ok {
				copy(st, e.state)
				if t >= 1 {
					copy(lat.transRow(t), e.trans)
				}
				continue
			}
			m.stateScores(theta, obs, st)
			if t >= 1 {
				tr := lat.transRow(t)
				m.transScores(theta, obs, tr)
				cache.insert(sig, obs, st, tr)
			}
			continue
		}
		if e := s.findMemo(sig); e != nil && obsEqual(obs, inst.Obs[e.tState]) {
			copy(st, lat.stateRow(int(e.tState)))
			if t >= 1 {
				if e.tTrans >= 1 {
					copy(lat.transRow(t), lat.transRow(int(e.tTrans)))
				} else {
					m.transScores(theta, obs, lat.transRow(t))
					e.tTrans = int32(t)
				}
			}
			continue
		}
		m.stateScores(theta, obs, st)
		tt := int32(-1)
		if t >= 1 {
			m.transScores(theta, obs, lat.transRow(t))
			tt = int32(t)
		}
		s.memo = append(s.memo, memoEntry{hash: sig, tState: int32(t), tTrans: tt})
	}
}

// findMemo returns the memo entry with the given hash, if any. The memo
// holds one entry per distinct line shape, so a linear scan is cheaper
// than a map for realistic record lengths.
func (s *scratch) findMemo(sig uint64) *memoEntry {
	for i := range s.memo {
		if s.memo[i].hash == sig {
			return &s.memo[i]
		}
	}
	return nil
}

// forwardInto computes alpha[t*n+j] = log Σ over paths ending in state j
// at t, into the scratch-provided flat array.
func forwardInto(lat *lattice, alpha, buf []float64) {
	n, T := lat.n, lat.T
	copy(alpha[:n], lat.state[:n])
	for t := 1; t < T; t++ {
		tr := lat.transRow(t)
		prev := alpha[(t-1)*n : t*n]
		cur := alpha[t*n : (t+1)*n]
		st := lat.stateRow(t)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				buf[i] = prev[i] + tr[i*n+j]
			}
			cur[j] = mathx.LogSumExpSlice(buf[:n]) + st[j]
		}
	}
}

// backwardInto computes beta[t*n+i] = log Σ over path continuations from
// state i at position t, into the scratch-provided flat array.
func backwardInto(lat *lattice, beta, buf []float64) {
	n, T := lat.n, lat.T
	mathx.Fill(beta[(T-1)*n:T*n], 0) // zeros == log 1
	for t := T - 2; t >= 0; t-- {
		tr := lat.transRow(t + 1)
		next := beta[(t+1)*n : (t+2)*n]
		cur := beta[t*n : (t+1)*n]
		st := lat.stateRow(t + 1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				buf[j] = tr[i*n+j] + st[j] + next[j]
			}
			cur[i] = mathx.LogSumExpSlice(buf[:n])
		}
	}
}

// viterbiInto runs the max-product recursion (eq. 14-16) over the filled
// lattice using scratch buffers, writes the argmax path into path (length
// T), and returns its unnormalized log score.
func viterbiInto(lat *lattice, s *scratch, path []int) float64 {
	n, T := lat.n, lat.T
	v, vNext := s.v[:n], s.vNext[:n]
	copy(v, lat.state[:n])
	for t := 1; t < T; t++ {
		tr := lat.transRow(t)
		st := lat.stateRow(t)
		back := s.back[t*n : (t+1)*n]
		for j := 0; j < n; j++ {
			best := mathx.NegInf
			bestI := 0
			for i := 0; i < n; i++ {
				if sc := v[i] + tr[i*n+j]; sc > best {
					best, bestI = sc, i
				}
			}
			vNext[j] = best + st[j]
			back[j] = int32(bestI)
		}
		v, vNext = vNext, v
	}
	bestJ, bestScore := mathx.ArgMax(v)
	path[T-1] = bestJ
	for t := T - 1; t >= 1; t-- {
		path[t-1] = int(s.back[t*n+path[t]])
	}
	return bestScore
}
