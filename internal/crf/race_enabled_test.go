//go:build race

package crf

// raceEnabled reports whether the race detector is active. Allocation
// guards are skipped under -race: its instrumentation allocates, and
// sync.Pool deliberately drops puts to widen race coverage.
const raceEnabled = true
