package crf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

// Differential tests for the pooled/memoized inference engine: the naive
// implementations below are the pre-engine code (fresh [][]float64 tables,
// no memoization, no pooling) kept verbatim as the reference. Every fast
// path must reproduce them bit-identically — cached score rows are copies
// of the direct computation, and the recursions perform the same floating-
// point operations in the same order.

type naiveLattice struct {
	n     int
	T     int
	state [][]float64
	trans [][]float64
}

func (m *Model) naiveBuildLattice(theta []float64, inst Instance) *naiveLattice {
	n := m.cfg.NumStates
	T := len(inst.Obs)
	lat := &naiveLattice{n: n, T: T}
	lat.state = make([][]float64, T)
	lat.trans = make([][]float64, T)
	for t := 0; t < T; t++ {
		lat.state[t] = make([]float64, n)
		m.stateScores(theta, inst.Obs[t], lat.state[t])
		if t >= 1 {
			lat.trans[t] = make([]float64, n*n)
			m.transScores(theta, inst.Obs[t], lat.trans[t])
		}
	}
	return lat
}

func naiveForward(lat *naiveLattice) [][]float64 {
	n, T := lat.n, lat.T
	alpha := make([][]float64, T)
	buf := make([]float64, n)
	for t := 0; t < T; t++ {
		alpha[t] = make([]float64, n)
		if t == 0 {
			copy(alpha[0], lat.state[0])
			continue
		}
		tr := lat.trans[t]
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				buf[i] = alpha[t-1][i] + tr[i*n+j]
			}
			alpha[t][j] = mathx.LogSumExpSlice(buf) + lat.state[t][j]
		}
	}
	return alpha
}

func naiveBackward(lat *naiveLattice) [][]float64 {
	n, T := lat.n, lat.T
	beta := make([][]float64, T)
	buf := make([]float64, n)
	for t := T - 1; t >= 0; t-- {
		beta[t] = make([]float64, n)
		if t == T-1 {
			continue
		}
		tr := lat.trans[t+1]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				buf[j] = tr[i*n+j] + lat.state[t+1][j] + beta[t+1][j]
			}
			beta[t][i] = mathx.LogSumExpSlice(buf)
		}
	}
	return beta
}

func naiveSeqScore(lat *naiveLattice, y []int) float64 {
	var s float64
	for t := 0; t < lat.T; t++ {
		s += lat.state[t][y[t]]
		if t >= 1 {
			s += lat.trans[t][y[t-1]*lat.n+y[t]]
		}
	}
	return s
}

func (m *Model) naiveDecode(inst Instance) ([]int, float64) {
	n := m.cfg.NumStates
	T := len(inst.Obs)
	if T == 0 {
		return nil, 0
	}
	lat := m.naiveBuildLattice(m.theta, inst)
	v := make([]float64, n)
	vNext := make([]float64, n)
	back := make([][]int32, T)
	copy(v, lat.state[0])
	for t := 1; t < T; t++ {
		back[t] = make([]int32, n)
		tr := lat.trans[t]
		for j := 0; j < n; j++ {
			best := mathx.NegInf
			bestI := 0
			for i := 0; i < n; i++ {
				if s := v[i] + tr[i*n+j]; s > best {
					best, bestI = s, i
				}
			}
			vNext[j] = best + lat.state[t][j]
			back[t][j] = int32(bestI)
		}
		v, vNext = vNext, v
	}
	bestJ, bestScore := mathx.ArgMax(v)
	path := make([]int, T)
	path[T-1] = bestJ
	for t := T - 1; t >= 1; t-- {
		path[t-1] = int(back[t][path[t]])
	}
	return path, bestScore
}

func (m *Model) naiveLogZ(inst Instance) float64 {
	lat := m.naiveBuildLattice(m.theta, inst)
	if lat.T == 0 {
		return 0
	}
	return mathx.LogSumExpSlice(naiveForward(lat)[lat.T-1])
}

func (m *Model) naiveMarginals(inst Instance) [][]float64 {
	lat := m.naiveBuildLattice(m.theta, inst)
	if lat.T == 0 {
		return nil
	}
	alpha := naiveForward(lat)
	beta := naiveBackward(lat)
	logZ := mathx.LogSumExpSlice(alpha[lat.T-1])
	out := make([][]float64, lat.T)
	for t := 0; t < lat.T; t++ {
		out[t] = make([]float64, lat.n)
		for j := 0; j < lat.n; j++ {
			out[t][j] = math.Exp(alpha[t][j] + beta[t][j] - logZ)
		}
	}
	return out
}

func (m *Model) naiveEdgeMarginals(inst Instance) [][]float64 {
	lat := m.naiveBuildLattice(m.theta, inst)
	if lat.T == 0 {
		return nil
	}
	alpha := naiveForward(lat)
	beta := naiveBackward(lat)
	logZ := mathx.LogSumExpSlice(alpha[lat.T-1])
	n := lat.n
	out := make([][]float64, lat.T)
	for t := 1; t < lat.T; t++ {
		out[t] = make([]float64, n*n)
		tr := lat.trans[t]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				out[t][i*n+j] = math.Exp(alpha[t-1][i] + tr[i*n+j] + lat.state[t][j] + beta[t][j] - logZ)
			}
		}
	}
	return out
}

func (m *Model) naiveInstanceNLL(theta []float64, inst Instance, grad []float64) float64 {
	n := m.cfg.NumStates
	T := len(inst.Obs)
	if T == 0 {
		return 0
	}
	lat := m.naiveBuildLattice(theta, inst)
	alpha := naiveForward(lat)
	beta := naiveBackward(lat)
	logZ := mathx.LogSumExpSlice(alpha[T-1])
	gold := naiveSeqScore(lat, inst.Labels)
	nll := logZ - gold
	if grad == nil {
		return nll
	}
	prob := make([]float64, n)
	for t := 0; t < T; t++ {
		var norm float64
		for j := 0; j < n; j++ {
			p := expSafe(alpha[t][j] + beta[t][j] - logZ)
			prob[j] = p
			norm += p
		}
		if norm > 0 {
			for j := 0; j < n; j++ {
				prob[j] /= norm
			}
		}
		prob[inst.Labels[t]] -= 1
		for j := 0; j < n; j++ {
			p := prob[j]
			if p == 0 {
				continue
			}
			grad[m.biasBase+j] += p
			for _, o := range inst.Obs[t] {
				grad[o*n+j] += p
			}
		}
	}
	edge := make([]float64, n*n)
	for t := 1; t < T; t++ {
		tr := lat.trans[t]
		var norm float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := expSafe(alpha[t-1][i] + tr[i*n+j] + lat.state[t][j] + beta[t][j] - logZ)
				edge[i*n+j] = p
				norm += p
			}
		}
		if norm > 0 {
			for k := range edge {
				edge[k] /= norm
			}
		}
		edge[inst.Labels[t-1]*n+inst.Labels[t]] -= 1
		for k, p := range edge {
			if p == 0 {
				continue
			}
			grad[m.transBase+k] += p
		}
		for _, o := range inst.Obs[t] {
			r := m.transRank[o]
			if r < 0 {
				continue
			}
			base := m.tobsBase + r*n*n
			for k, p := range edge {
				if p != 0 {
					grad[base+k] += p
				}
			}
		}
	}
	return nll
}

// repeatingInstance builds an instance where a handful of line shapes
// recur many times, the pattern the memoization paths exist for.
func repeatingInstance(rng *rand.Rand, dictLen, T, nShapes int, labeled bool, nStates int) Instance {
	shapes := make([][]int, nShapes)
	for i := range shapes {
		k := 1 + rng.Intn(4)
		shapes[i] = make([]int, k)
		for j := range shapes[i] {
			shapes[i][j] = rng.Intn(dictLen)
		}
	}
	inst := Instance{Obs: make([][]int, T)}
	for t := 0; t < T; t++ {
		inst.Obs[t] = shapes[rng.Intn(nShapes)]
	}
	if labeled {
		inst.Labels = make([]int, T)
		for t := range inst.Labels {
			inst.Labels[t] = rng.Intn(nStates)
		}
	}
	return inst
}

func TestEngineMatchesNaiveDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	dict := makeDict(t, 14)
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		m := randomModel(rng, dict, n)
		var inst Instance
		if trial%2 == 0 {
			inst = repeatingInstance(rng, dict.Len(), 2+rng.Intn(30), 1+rng.Intn(4), false, n)
		} else {
			inst = randomInstance(rng, dict, 1+rng.Intn(12), n, false)
		}
		wantPath, wantScore := m.naiveDecode(inst)
		// Run twice: the first call populates the model cache, the second
		// exercises the pure cache-hit path.
		for pass := 0; pass < 2; pass++ {
			gotPath, gotScore := m.Decode(inst)
			if gotScore != wantScore {
				t.Fatalf("trial %d pass %d: score %v != naive %v", trial, pass, gotScore, wantScore)
			}
			for i := range wantPath {
				if gotPath[i] != wantPath[i] {
					t.Fatalf("trial %d pass %d: path differs at %d", trial, pass, i)
				}
			}
		}
	}
}

func TestEngineMatchesNaiveMarginalsAndLogZ(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	dict := makeDict(t, 14)
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		m := randomModel(rng, dict, n)
		inst := repeatingInstance(rng, dict.Len(), 2+rng.Intn(30), 1+rng.Intn(5), false, n)
		wantZ := m.naiveLogZ(inst)
		wantM := m.naiveMarginals(inst)
		wantE := m.naiveEdgeMarginals(inst)
		for pass := 0; pass < 2; pass++ {
			if gotZ := m.LogZ(inst); gotZ != wantZ {
				t.Fatalf("trial %d pass %d: LogZ %v != naive %v", trial, pass, gotZ, wantZ)
			}
			gotM := m.Marginals(inst)
			for tt := range wantM {
				for j := range wantM[tt] {
					if gotM[tt][j] != wantM[tt][j] {
						t.Fatalf("trial %d pass %d: marginal [%d][%d] %v != naive %v",
							trial, pass, tt, j, gotM[tt][j], wantM[tt][j])
					}
				}
			}
			gotE := m.EdgeMarginals(inst)
			if (gotE[0] == nil) != (wantE[0] == nil) {
				t.Fatalf("trial %d: edge marginal t=0 shape differs", trial)
			}
			for tt := 1; tt < len(wantE); tt++ {
				for k := range wantE[tt] {
					if gotE[tt][k] != wantE[tt][k] {
						t.Fatalf("trial %d pass %d: edge marginal [%d][%d] %v != naive %v",
							trial, pass, tt, k, gotE[tt][k], wantE[tt][k])
					}
				}
			}
		}
	}
}

func TestEngineMatchesNaiveGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	dict := makeDict(t, 12)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		m := randomModel(rng, dict, n)
		inst := repeatingInstance(rng, dict.Len(), 2+rng.Intn(20), 1+rng.Intn(4), true, n)
		theta := m.Theta()
		wantGrad := make([]float64, m.NumFeatures())
		wantNLL := m.naiveInstanceNLL(theta, inst, wantGrad)
		gotGrad := make([]float64, m.NumFeatures())
		var s scratch
		gotNLL := m.instanceNLL(&s, theta, inst, gotGrad)
		if gotNLL != wantNLL {
			t.Fatalf("trial %d: nll %v != naive %v", trial, gotNLL, wantNLL)
		}
		for k := range wantGrad {
			if gotGrad[k] != wantGrad[k] {
				t.Fatalf("trial %d: grad[%d] %v != naive %v", trial, k, gotGrad[k], wantGrad[k])
			}
		}
		// Scratch reuse across instances must not leak state.
		inst2 := randomInstance(rng, dict, 1+rng.Intn(8), n, true)
		want2 := make([]float64, m.NumFeatures())
		got2 := make([]float64, m.NumFeatures())
		if a, b := m.naiveInstanceNLL(theta, inst2, want2), m.instanceNLL(&s, theta, inst2, got2); a != b {
			t.Fatalf("trial %d: reused-scratch nll %v != naive %v", trial, b, a)
		}
		for k := range want2 {
			if got2[k] != want2[k] {
				t.Fatalf("trial %d: reused-scratch grad[%d] differs", trial, k)
			}
		}
	}
}

func TestPosteriorMatchesSeparateCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	dict := makeDict(t, 12)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		m := randomModel(rng, dict, n)
		inst := repeatingInstance(rng, dict.Len(), 1+rng.Intn(25), 1+rng.Intn(4), false, n)
		post := m.Posterior(inst)
		path, score := m.Decode(inst)
		marg := m.Marginals(inst)
		logZ := m.LogZ(inst)
		if post.Score != score || post.LogZ != logZ {
			t.Fatalf("trial %d: posterior (score %v, logZ %v) vs separate (%v, %v)",
				trial, post.Score, post.LogZ, score, logZ)
		}
		for i := range path {
			if post.Path[i] != path[i] {
				t.Fatalf("trial %d: posterior path differs at %d", trial, i)
			}
		}
		for tt := range marg {
			for j := range marg[tt] {
				if post.Marginals[tt][j] != marg[tt][j] {
					t.Fatalf("trial %d: posterior marginal [%d][%d] differs", trial, tt, j)
				}
			}
		}
	}
}

func TestPosteriorEmptyInstance(t *testing.T) {
	dict := makeDict(t, 3)
	m := New(dict, Config{NumStates: 2})
	post := m.Posterior(Instance{})
	if post.Path != nil || post.Marginals != nil || post.LogZ != 0 || post.Score != 0 {
		t.Errorf("empty posterior: %+v", post)
	}
}

// TestScoreCacheInvalidatedOnThetaChange guards the central memoization
// invariant: cached rows must never survive a theta update.
func TestScoreCacheInvalidatedOnThetaChange(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	dict := makeDict(t, 10)
	n := 3
	m := randomModel(rng, dict, n)
	inst := randomInstance(rng, dict, 6, n, false)
	_, before := m.Decode(inst) // populate the cache
	theta := mathx.Clone(m.Theta())
	for i := range theta {
		theta[i] += 0.5
	}
	if err := m.SetTheta(theta); err != nil {
		t.Fatal(err)
	}
	_, after := m.Decode(inst)
	if _, naive := m.naiveDecode(inst); after != naive {
		t.Fatalf("post-SetTheta decode score %v, naive %v (stale cache?)", after, naive)
	}
	if after == before {
		t.Fatal("decode score unchanged after theta shift — cache not invalidated")
	}
	// WarmStartFrom also mutates theta in place and must invalidate.
	m2 := randomModel(rng, dict, n)
	_, _ = m2.Decode(inst)
	m2.WarmStartFrom(m)
	if _, naive := m2.naiveDecode(inst); func() float64 { _, s := m2.Decode(inst); return s }() != naive {
		t.Fatal("stale cache after WarmStartFrom")
	}
}

// TestDecodeSteadyStateAllocs pins the zero-allocation property: after
// warm-up, Decode allocates only the escaping path slice.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(106))
	dict := makeDict(t, 12)
	n := 6
	m := randomModel(rng, dict, n)
	inst := repeatingInstance(rng, dict.Len(), 40, 6, false, n)
	m.Decode(inst) // warm the score cache and the scratch pool
	allocs := testing.AllocsPerRun(200, func() {
		m.Decode(inst)
	})
	if allocs > 2 {
		t.Errorf("Decode steady state: %.1f allocs/op, want <= 2 (path only)", allocs)
	}
}

// TestLogZSteadyStateAllocs: LogZ has no escaping output at all.
func TestLogZSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(107))
	dict := makeDict(t, 12)
	n := 6
	m := randomModel(rng, dict, n)
	inst := repeatingInstance(rng, dict.Len(), 40, 6, false, n)
	m.LogZ(inst)
	allocs := testing.AllocsPerRun(200, func() {
		m.LogZ(inst)
	})
	if allocs > 1 {
		t.Errorf("LogZ steady state: %.1f allocs/op, want <= 1", allocs)
	}
}

func TestScoreCacheCollisionSafe(t *testing.T) {
	// Force two shapes through lookup with the same hash by checking the
	// collision guard directly: a lookup with mismatched obs must miss.
	c := new(scoreCache)
	obsA := []int{1, 2, 3}
	c.insert(42, obsA, []float64{1}, []float64{2})
	if _, ok := c.lookup(42, []int{4, 5, 6}); ok {
		t.Fatal("lookup returned an entry for different observations")
	}
	if e, ok := c.lookup(42, obsA); !ok || e.state[0] != 1 {
		t.Fatal("lookup missed the inserted entry")
	}
}

func TestScoreCacheCapBoundsInsertions(t *testing.T) {
	c := new(scoreCache)
	for i := 0; i < maxScoreCacheEntries+100; i++ {
		c.insert(uint64(i), []int{i}, []float64{0}, []float64{0})
	}
	if got := c.count.Load(); got > maxScoreCacheEntries {
		t.Fatalf("cache grew to %d entries, cap is %d", got, maxScoreCacheEntries)
	}
}
