package crf

import (
	"math"

	"repro/internal/mathx"
)

// lattice holds the per-position score tables for one instance. All scores
// are in the log domain.
type lattice struct {
	n     int
	T     int
	state [][]float64 // [t][y]
	trans [][]float64 // [t][i*n+j], valid for t >= 1
}

func (m *Model) buildLattice(theta []float64, inst Instance) *lattice {
	n := m.cfg.NumStates
	T := len(inst.Obs)
	lat := &lattice{n: n, T: T}
	lat.state = make([][]float64, T)
	lat.trans = make([][]float64, T)
	stateBacking := make([]float64, T*n)
	transBacking := make([]float64, T*n*n)
	for t := 0; t < T; t++ {
		lat.state[t] = stateBacking[t*n : (t+1)*n]
		m.stateScores(theta, inst.Obs[t], lat.state[t])
		if t >= 1 {
			lat.trans[t] = transBacking[t*n*n : (t+1)*n*n]
			m.transScores(theta, inst.Obs[t], lat.trans[t])
		}
	}
	return lat
}

// Decode returns the Viterbi (maximum a posteriori) label sequence for the
// instance, together with its unnormalized log score (eq. 13). An empty
// instance decodes to an empty sequence.
func (m *Model) Decode(inst Instance) ([]int, float64) {
	return m.decodeWith(m.theta, inst)
}

func (m *Model) decodeWith(theta []float64, inst Instance) ([]int, float64) {
	n := m.cfg.NumStates
	T := len(inst.Obs)
	if T == 0 {
		return nil, 0
	}
	lat := m.buildLattice(theta, inst)

	// V[t][j] per eq. 14-15; back[t][j] records the argmax (eq. 16).
	v := make([]float64, n)
	vNext := make([]float64, n)
	back := make([][]int32, T)
	copy(v, lat.state[0])
	for t := 1; t < T; t++ {
		back[t] = make([]int32, n)
		tr := lat.trans[t]
		for j := 0; j < n; j++ {
			best := mathx.NegInf
			bestI := 0
			for i := 0; i < n; i++ {
				if s := v[i] + tr[i*n+j]; s > best {
					best, bestI = s, i
				}
			}
			vNext[j] = best + lat.state[t][j]
			back[t][j] = int32(bestI)
		}
		v, vNext = vNext, v
	}
	bestJ, bestScore := mathx.ArgMax(v)
	path := make([]int, T)
	path[T-1] = bestJ
	for t := T - 1; t >= 1; t-- {
		path[t-1] = int(back[t][path[t]])
	}
	return path, bestScore
}

// LogZ returns the log of the normalization factor Z(x) (eq. 3/10),
// computed by the forward recursion in the log domain.
func (m *Model) LogZ(inst Instance) float64 {
	lat := m.buildLattice(m.theta, inst)
	alpha := forward(lat)
	if lat.T == 0 {
		return 0
	}
	return mathx.LogSumExpSlice(alpha[lat.T-1])
}

// SequenceScore returns the unnormalized log score Σ_t,k θ_k f_k of a
// label sequence, and LogProb its normalized log posterior (eq. 2).
func (m *Model) SequenceScore(inst Instance, y []int) float64 {
	return m.sequenceScoreWith(m.theta, inst, y)
}

func (m *Model) sequenceScoreWith(theta []float64, inst Instance, y []int) float64 {
	lat := m.buildLattice(theta, inst)
	return latticeSeqScore(lat, y)
}

func latticeSeqScore(lat *lattice, y []int) float64 {
	var s float64
	for t := 0; t < lat.T; t++ {
		s += lat.state[t][y[t]]
		if t >= 1 {
			s += lat.trans[t][y[t-1]*lat.n+y[t]]
		}
	}
	return s
}

// LogProb returns log Pr(y|x) under the model.
func (m *Model) LogProb(inst Instance, y []int) float64 {
	lat := m.buildLattice(m.theta, inst)
	alpha := forward(lat)
	if lat.T == 0 {
		return 0
	}
	logZ := mathx.LogSumExpSlice(alpha[lat.T-1])
	return latticeSeqScore(lat, y) - logZ
}

// forward computes alpha[t][j] = log Σ over paths ending in state j at t.
func forward(lat *lattice) [][]float64 {
	n, T := lat.n, lat.T
	alpha := make([][]float64, T)
	buf := make([]float64, n)
	for t := 0; t < T; t++ {
		alpha[t] = make([]float64, n)
		if t == 0 {
			copy(alpha[0], lat.state[0])
			continue
		}
		tr := lat.trans[t]
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				buf[i] = alpha[t-1][i] + tr[i*n+j]
			}
			alpha[t][j] = mathx.LogSumExpSlice(buf) + lat.state[t][j]
		}
	}
	return alpha
}

// backward computes beta[t][i] = log Σ over path continuations from state
// i at position t.
func backward(lat *lattice) [][]float64 {
	n, T := lat.n, lat.T
	beta := make([][]float64, T)
	buf := make([]float64, n)
	for t := T - 1; t >= 0; t-- {
		beta[t] = make([]float64, n)
		if t == T-1 {
			continue // zeros == log 1
		}
		tr := lat.trans[t+1]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				buf[j] = tr[i*n+j] + lat.state[t+1][j] + beta[t+1][j]
			}
			beta[t][i] = mathx.LogSumExpSlice(buf)
		}
	}
	return beta
}

// Marginals returns the per-position posterior Pr(y_t = j | x) as a
// T×n matrix (eq. 12 specializes to these node marginals).
func (m *Model) Marginals(inst Instance) [][]float64 {
	lat := m.buildLattice(m.theta, inst)
	if lat.T == 0 {
		return nil
	}
	alpha := forward(lat)
	beta := backward(lat)
	logZ := mathx.LogSumExpSlice(alpha[lat.T-1])
	out := make([][]float64, lat.T)
	for t := 0; t < lat.T; t++ {
		out[t] = make([]float64, lat.n)
		for j := 0; j < lat.n; j++ {
			out[t][j] = math.Exp(alpha[t][j] + beta[t][j] - logZ)
		}
	}
	return out
}

// EdgeMarginals returns Pr(y_{t-1}=i, y_t=j | x) for t in [1, T), as a
// slice indexed by t with n×n matrices flattened row-major (eq. 12).
func (m *Model) EdgeMarginals(inst Instance) [][]float64 {
	lat := m.buildLattice(m.theta, inst)
	if lat.T == 0 {
		return nil
	}
	alpha := forward(lat)
	beta := backward(lat)
	logZ := mathx.LogSumExpSlice(alpha[lat.T-1])
	n := lat.n
	out := make([][]float64, lat.T)
	for t := 1; t < lat.T; t++ {
		out[t] = make([]float64, n*n)
		tr := lat.trans[t]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				out[t][i*n+j] = math.Exp(alpha[t-1][i] + tr[i*n+j] + lat.state[t][j] + beta[t][j] - logZ)
			}
		}
	}
	return out
}
