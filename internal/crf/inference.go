package crf

import (
	"math"

	"repro/internal/mathx"
)

// The public inference entry points below all run on pooled scratch
// buffers (see engine.go) and consult the model-level score-row cache, so
// in steady state they allocate only their escaping outputs.

// Decode returns the Viterbi (maximum a posteriori) label sequence for the
// instance, together with its unnormalized log score (eq. 13). An empty
// instance decodes to an empty sequence.
func (m *Model) Decode(inst Instance) ([]int, float64) {
	T := len(inst.Obs)
	if T == 0 {
		return nil, 0
	}
	defer m.observeDecode(m.decodeStart(), T)
	s := getScratch()
	defer putScratch(s)
	m.fillLattice(s, m.theta, inst, m.curCache())
	path := make([]int, T)
	score := viterbiInto(&s.lat, s, path)
	return path, score
}

// LogZ returns the log of the normalization factor Z(x) (eq. 3/10),
// computed by the forward recursion in the log domain.
func (m *Model) LogZ(inst Instance) float64 {
	T := len(inst.Obs)
	if T == 0 {
		return 0
	}
	s := getScratch()
	defer putScratch(s)
	m.fillLattice(s, m.theta, inst, m.curCache())
	forwardInto(&s.lat, s.alpha, s.buf)
	n := s.lat.n
	return mathx.LogSumExpSlice(s.alpha[(T-1)*n : T*n])
}

// SequenceScore returns the unnormalized log score Σ_t,k θ_k f_k of a
// label sequence, and LogProb its normalized log posterior (eq. 2).
func (m *Model) SequenceScore(inst Instance, y []int) float64 {
	s := getScratch()
	defer putScratch(s)
	m.fillLattice(s, m.theta, inst, m.curCache())
	return latticeSeqScore(&s.lat, y)
}

func latticeSeqScore(lat *lattice, y []int) float64 {
	var s float64
	for t := 0; t < lat.T; t++ {
		s += lat.state[t*lat.n+y[t]]
		if t >= 1 {
			s += lat.trans[t*lat.n*lat.n+y[t-1]*lat.n+y[t]]
		}
	}
	return s
}

// LogProb returns log Pr(y|x) under the model.
func (m *Model) LogProb(inst Instance, y []int) float64 {
	T := len(inst.Obs)
	if T == 0 {
		return 0
	}
	s := getScratch()
	defer putScratch(s)
	m.fillLattice(s, m.theta, inst, m.curCache())
	forwardInto(&s.lat, s.alpha, s.buf)
	n := s.lat.n
	logZ := mathx.LogSumExpSlice(s.alpha[(T-1)*n : T*n])
	return latticeSeqScore(&s.lat, y) - logZ
}

// Marginals returns the per-position posterior Pr(y_t = j | x) as a
// T×n matrix (eq. 12 specializes to these node marginals).
func (m *Model) Marginals(inst Instance) [][]float64 {
	T := len(inst.Obs)
	if T == 0 {
		return nil
	}
	s := getScratch()
	defer putScratch(s)
	m.fillLattice(s, m.theta, inst, m.curCache())
	forwardInto(&s.lat, s.alpha, s.buf)
	backwardInto(&s.lat, s.beta, s.buf)
	n := s.lat.n
	logZ := mathx.LogSumExpSlice(s.alpha[(T-1)*n : T*n])
	return nodeMarginals(s, T, n, logZ)
}

// nodeMarginals exponentiates alpha+beta-logZ into a freshly allocated
// T×n matrix backed by one contiguous array.
func nodeMarginals(s *scratch, T, n int, logZ float64) [][]float64 {
	out := make([][]float64, T)
	backing := make([]float64, T*n)
	for t := 0; t < T; t++ {
		row := backing[t*n : (t+1)*n]
		for j := 0; j < n; j++ {
			row[j] = math.Exp(s.alpha[t*n+j] + s.beta[t*n+j] - logZ)
		}
		out[t] = row
	}
	return out
}

// EdgeMarginals returns Pr(y_{t-1}=i, y_t=j | x) for t in [1, T), as a
// slice indexed by t with n×n matrices flattened row-major (eq. 12).
func (m *Model) EdgeMarginals(inst Instance) [][]float64 {
	T := len(inst.Obs)
	if T == 0 {
		return nil
	}
	s := getScratch()
	defer putScratch(s)
	m.fillLattice(s, m.theta, inst, m.curCache())
	forwardInto(&s.lat, s.alpha, s.buf)
	backwardInto(&s.lat, s.beta, s.buf)
	n := s.lat.n
	logZ := mathx.LogSumExpSlice(s.alpha[(T-1)*n : T*n])
	out := make([][]float64, T)
	backing := make([]float64, (T-1)*n*n)
	for t := 1; t < T; t++ {
		row := backing[(t-1)*n*n : t*n*n]
		tr := s.lat.transRow(t)
		st := s.lat.stateRow(t)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				row[i*n+j] = math.Exp(s.alpha[(t-1)*n+i] + tr[i*n+j] + st[j] + s.beta[t*n+j] - logZ)
			}
		}
		out[t] = row
	}
	return out
}

// Posterior bundles everything one fused inference pass can produce: the
// Viterbi path with its unnormalized score, the node marginals, and logZ.
type Posterior struct {
	// Path is the Viterbi label sequence; Score its unnormalized log score.
	Path  []int
	Score float64
	// Marginals[t][j] is Pr(y_t = j | x).
	Marginals [][]float64
	// LogZ is the log normalization factor.
	LogZ float64
}

// Posterior builds the lattice once and runs Viterbi and forward-backward
// over it, so callers needing both the argmax path and its per-position
// posteriors (confidence scoring, active learning) pay one lattice build
// instead of the two that separate Decode + Marginals calls would cost.
func (m *Model) Posterior(inst Instance) Posterior {
	T := len(inst.Obs)
	if T == 0 {
		return Posterior{}
	}
	defer m.observeDecode(m.decodeStart(), T)
	s := getScratch()
	defer putScratch(s)
	m.fillLattice(s, m.theta, inst, m.curCache())
	n := s.lat.n
	forwardInto(&s.lat, s.alpha, s.buf)
	backwardInto(&s.lat, s.beta, s.buf)
	logZ := mathx.LogSumExpSlice(s.alpha[(T-1)*n : T*n])
	path := make([]int, T)
	score := viterbiInto(&s.lat, s, path)
	return Posterior{
		Path:      path,
		Score:     score,
		Marginals: nodeMarginals(s, T, n, logZ),
		LogZ:      logZ,
	}
}
