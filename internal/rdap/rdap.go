// Package rdap implements a minimal Registration Data Access Protocol
// (RDAP) service and client. The paper's background section (§2.2) points
// at the IETF WEIRDS drafts — "well-received proposals to completely
// scrap the WHOIS system altogether for a protocol with a well-defined
// structured data schema" — as the eventual fix for the parsing problem
// this repository reproduces. Implementing the structured path alongside
// the statistical parser lets the experiments demonstrate the contrast
// directly: RDAP responses parse with encoding/json and no model at all.
//
// The JSON shapes follow the domain object class of the RDAP drafts
// (objectClassName, ldhName, entities with vcardArray, events, status,
// nameservers), simplified to the fields the rest of this repository
// models.
package rdap

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/identity"
	"repro/internal/templates"
)

// Domain is the RDAP domain object class.
type Domain struct {
	ObjectClassName string       `json:"objectClassName"`
	LDHName         string       `json:"ldhName"`
	Handle          string       `json:"handle,omitempty"`
	Status          []string     `json:"status,omitempty"`
	Events          []Event      `json:"events,omitempty"`
	Entities        []Entity     `json:"entities,omitempty"`
	Nameservers     []Nameserver `json:"nameservers,omitempty"`
	Port43          string       `json:"port43,omitempty"`
}

// Event is a dated lifecycle event ("registration", "expiration", ...).
type Event struct {
	EventAction string    `json:"eventAction"`
	EventDate   time.Time `json:"eventDate"`
}

// Entity is a contact with one or more roles ("registrant", "registrar",
// "administrative", "technical"). Contact details ride in a jCard
// (vcardArray), per the RDAP drafts.
type Entity struct {
	ObjectClassName string   `json:"objectClassName"`
	Handle          string   `json:"handle,omitempty"`
	Roles           []string `json:"roles"`
	VCardArray      []any    `json:"vcardArray,omitempty"`
}

// Nameserver names one delegated name server.
type Nameserver struct {
	ObjectClassName string `json:"objectClassName"`
	LDHName         string `json:"ldhName"`
}

// vcard builds a jCard for a person: ["vcard", [[prop, {}, type, value]...]].
func vcard(p *identity.Person) []any {
	props := [][]any{
		{"version", map[string]any{}, "text", "4.0"},
		{"fn", map[string]any{}, "text", p.Name},
	}
	if p.Org != "" {
		props = append(props, []any{"org", map[string]any{}, "text", p.Org})
	}
	street := p.Street
	if p.Street2 != "" {
		street += ", " + p.Street2
	}
	props = append(props, []any{"adr", map[string]any{}, "text",
		[]any{"", "", street, p.City, p.State, p.Postcode, p.CountryName}})
	if p.Phone != "" {
		props = append(props, []any{"tel", map[string]any{"type": "voice"}, "uri", "tel:" + p.Phone})
	}
	if p.Email != "" {
		props = append(props, []any{"email", map[string]any{}, "text", p.Email})
	}
	out := make([]any, 0, len(props))
	for _, pr := range props {
		out = append(out, pr)
	}
	return []any{"vcard", out}
}

// FromRegistration converts the simulator's ground-truth registration into
// an RDAP domain object — what a thick registry would serve if it spoke
// RDAP instead of free-text WHOIS.
func FromRegistration(reg *templates.Registration) *Domain {
	d := &Domain{
		ObjectClassName: "domain",
		LDHName:         strings.ToLower(reg.Domain),
		Handle:          fmt.Sprintf("%s-REP", strings.ToUpper(strings.TrimSuffix(reg.Domain, "."+reg.TLD))),
		Status:          append([]string(nil), reg.Statuses...),
		Port43:          reg.WhoisServer,
		Events: []Event{
			{EventAction: "registration", EventDate: reg.Created},
			{EventAction: "last changed", EventDate: reg.Updated},
			{EventAction: "expiration", EventDate: reg.Expires},
		},
	}
	d.Entities = append(d.Entities,
		Entity{
			ObjectClassName: "entity",
			Handle:          fmt.Sprintf("registrar-%d", reg.RegistrarIANA),
			Roles:           []string{"registrar"},
			VCardArray: []any{"vcard", []any{
				[]any{"version", map[string]any{}, "text", "4.0"},
				[]any{"fn", map[string]any{}, "text", reg.RegistrarName},
				[]any{"url", map[string]any{}, "uri", reg.RegistrarURL},
			}},
		},
		Entity{ObjectClassName: "entity", Roles: []string{"registrant"}, VCardArray: vcard(&reg.Registrant)},
		Entity{ObjectClassName: "entity", Roles: []string{"administrative"}, VCardArray: vcard(&reg.Admin)},
		Entity{ObjectClassName: "entity", Roles: []string{"technical"}, VCardArray: vcard(&reg.Tech)},
	)
	for _, ns := range reg.NameServers {
		d.Nameservers = append(d.Nameservers, Nameserver{ObjectClassName: "nameserver", LDHName: strings.ToLower(ns)})
	}
	return d
}

// Marshal renders the domain object as RDAP JSON.
func (d *Domain) Marshal() ([]byte, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("rdap: marshal %s: %w", d.LDHName, err)
	}
	return b, nil
}

// Parse decodes RDAP JSON into a Domain.
func Parse(data []byte) (*Domain, error) {
	var d Domain
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("rdap: parse: %w", err)
	}
	if d.ObjectClassName != "domain" {
		return nil, fmt.Errorf("rdap: object class %q, want \"domain\"", d.ObjectClassName)
	}
	return &d, nil
}

// Contact is the flattened view of an entity's jCard, mirroring the
// fields the statistical parser extracts from free-text records.
type Contact struct {
	Name     string
	Org      string
	Street   string
	City     string
	State    string
	Postcode string
	Country  string
	Phone    string
	Email    string
}

// EntityByRole returns the first entity carrying the role, or nil.
func (d *Domain) EntityByRole(role string) *Entity {
	for i := range d.Entities {
		for _, r := range d.Entities[i].Roles {
			if r == role {
				return &d.Entities[i]
			}
		}
	}
	return nil
}

// ContactByRole extracts the flattened contact for a role. The second
// return is false when the role is absent.
func (d *Domain) ContactByRole(role string) (Contact, bool) {
	e := d.EntityByRole(role)
	if e == nil {
		return Contact{}, false
	}
	return flattenVCard(e.VCardArray), true
}

func flattenVCard(v []any) Contact {
	var c Contact
	if len(v) != 2 {
		return c
	}
	props, ok := v[1].([]any)
	if !ok {
		return c
	}
	for _, raw := range props {
		prop, ok := raw.([]any)
		if !ok || len(prop) < 4 {
			continue
		}
		name, _ := prop[0].(string)
		switch name {
		case "fn":
			c.Name, _ = prop[3].(string)
		case "org":
			c.Org, _ = prop[3].(string)
		case "tel":
			tel, _ := prop[3].(string)
			c.Phone = strings.TrimPrefix(tel, "tel:")
		case "email":
			c.Email, _ = prop[3].(string)
		case "adr":
			parts, ok := prop[3].([]any)
			if !ok || len(parts) < 7 {
				continue
			}
			get := func(i int) string {
				s, _ := parts[i].(string)
				return s
			}
			c.Street, c.City, c.State, c.Postcode, c.Country = get(2), get(3), get(4), get(5), get(6)
		}
	}
	return c
}

// EventDate returns the date of the first event carrying the action
// ("registration", "expiration", "last changed"), if present.
func (d *Domain) EventDate(action string) (time.Time, bool) {
	for _, e := range d.Events {
		if e.EventAction == action {
			return e.EventDate, true
		}
	}
	return time.Time{}, false
}

// RegistrationDate returns the "registration" event date, if present.
func (d *Domain) RegistrationDate() (time.Time, bool) {
	return d.EventDate("registration")
}

// ExpirationDate returns the "expiration" event date, if present.
func (d *Domain) ExpirationDate() (time.Time, bool) {
	return d.EventDate("expiration")
}

// LastChangedDate returns the "last changed" event date, if present.
func (d *Domain) LastChangedDate() (time.Time, bool) {
	return d.EventDate("last changed")
}

// RegistrarName returns the registrar entity's display name (jCard fn),
// or "" when the domain carries no registrar entity.
func (d *Domain) RegistrarName() string {
	e := d.EntityByRole("registrar")
	if e == nil {
		return ""
	}
	return flattenVCard(e.VCardArray).Name
}

// NameserverNames returns the delegated nameserver LDH names in order.
func (d *Domain) NameserverNames() []string {
	if len(d.Nameservers) == 0 {
		return nil
	}
	out := make([]string, len(d.Nameservers))
	for i, ns := range d.Nameservers {
		out[i] = ns.LDHName
	}
	return out
}
