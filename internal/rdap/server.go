package rdap

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/synth"
)

// Server is an HTTP RDAP endpoint serving /domain/{name} lookups over a
// generated corpus — the structured-data counterfactual to the free-text
// WHOIS ecosystem in internal/whoisd. With EnableParsed it additionally
// serves /parsed/{name}: the statistical parser's reading of the raw
// WHOIS text, through the shared serving layer in internal/serve.
type Server struct {
	mu      sync.RWMutex
	domains map[string]*Domain
	records map[string]string // raw WHOIS text, for /parsed/
	parse   ParseBackend
	httpSrv *http.Server
	addr    string
	met     *serverMetrics
}

// ParseBackend is what /parsed/{name} serves through: a plain
// serve.Server (wrapped by EnableParsed) or a cluster node that routes
// the domain to its ring owner first (EnableParsedBackend). The domain
// rides along with the text so a cluster backend can consistent-hash
// it.
type ParseBackend interface {
	ParseDomain(ctx context.Context, domain, text string) (*core.ParsedRecord, error)
}

// serveBackend adapts the single-process serving layer to ParseBackend:
// locally there is no routing decision, the domain is ignored.
type serveBackend struct{ ps *serve.Server }

func (b serveBackend) ParseDomain(ctx context.Context, _, text string) (*core.ParsedRecord, error) {
	return b.ps.Parse(ctx, text)
}

// serverMetrics are the HTTP-layer counters; the parse-serving layer
// below carries its own serve.* metrics in the same registry.
type serverMetrics struct {
	requests *obs.Counter   // rdap.requests: every request, any path
	notFound *obs.Counter   // rdap.notfound: 404 lookups
	parsed   *obs.Histogram // rdap.parsed.seconds: /parsed handler latency
}

// Instrument registers the server's request counters in reg. Call before
// Listen; a server without Instrument records nothing.
func (s *Server) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = &serverMetrics{
		requests: reg.Counter("rdap.requests"),
		notFound: reg.Counter("rdap.notfound"),
		parsed:   reg.Histogram("rdap.parsed.seconds", obs.DurationBounds()),
	}
}

// NewServer indexes the given corpus.
func NewServer(domains []*synth.Domain) *Server {
	s := &Server{domains: make(map[string]*Domain, len(domains))}
	for _, d := range domains {
		s.domains[strings.ToLower(d.Reg.Domain)] = FromRegistration(&d.Reg)
	}
	return s
}

// errorResponse is the RDAP error object.
type errorResponse struct {
	ErrorCode   int      `json:"errorCode"`
	Title       string   `json:"title"`
	Description []string `json:"description,omitempty"`
}

// EnableParsed wires the statistical parse-serving layer into the
// server: GET /parsed/{name} runs the domain's raw WHOIS text through ps
// and answers with the labeled fields as RDAP-flavored JSON. Call before
// Listen; the caller keeps ownership of ps (and closes it after Close).
func (s *Server) EnableParsed(ps *serve.Server, domains []*synth.Domain) {
	s.EnableParsedBackend(serveBackend{ps}, domains)
}

// EnableParsedBackend is EnableParsed over any ParseBackend — the
// cluster entry point: rdapd in cluster mode passes its cluster.Node so
// every /parsed/ request is served by the domain's ring owner.
func (s *Server) EnableParsedBackend(pb ParseBackend, domains []*synth.Domain) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.parse = pb
	s.records = make(map[string]string, len(domains))
	for _, d := range domains {
		s.records[strings.ToLower(d.Reg.Domain)] = d.Render().Text
	}
}

// ServeHTTP implements http.Handler for /domain/{name} and
// /parsed/{name}.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/rdap+json")
	// RDAP is a read-only protocol here: anything but GET/HEAD is a
	// method error, not a failed lookup.
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{
			ErrorCode: 405, Title: "method not allowed",
			Description: []string{r.Method + " is not supported; use GET or HEAD"}})
		return
	}
	s.mu.RLock()
	met := s.met
	s.mu.RUnlock()
	if met != nil {
		met.requests.Inc()
	}
	switch {
	case strings.HasPrefix(r.URL.Path, "/domain/"):
		s.serveDomain(w, strings.ToLower(strings.TrimPrefix(r.URL.Path, "/domain/")))
	case strings.HasPrefix(r.URL.Path, "/parsed/"):
		start := time.Now()
		s.serveParsed(w, r, strings.ToLower(strings.TrimPrefix(r.URL.Path, "/parsed/")))
		if met != nil {
			met.parsed.ObserveSince(start)
		}
	default:
		writeJSON(w, http.StatusNotFound, errorResponse{ErrorCode: 404, Title: "unsupported path"})
	}
}

func (s *Server) serveDomain(w http.ResponseWriter, name string) {
	s.mu.RLock()
	d, ok := s.domains[name]
	met := s.met
	s.mu.RUnlock()
	if !ok {
		if met != nil {
			met.notFound.Inc()
		}
		writeJSON(w, http.StatusNotFound, errorResponse{ErrorCode: 404, Title: "domain not found",
			Description: []string{name + " is not registered here"}})
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) serveParsed(w http.ResponseWriter, r *http.Request, name string) {
	s.mu.RLock()
	ps := s.parse
	text, ok := s.records[name]
	met := s.met
	s.mu.RUnlock()
	if ps == nil {
		writeJSON(w, http.StatusNotImplemented, errorResponse{ErrorCode: 501,
			Title:       "parsed view not enabled",
			Description: []string{"this server was started without a parser"}})
		return
	}
	if !ok {
		if met != nil {
			met.notFound.Inc()
		}
		writeJSON(w, http.StatusNotFound, errorResponse{ErrorCode: 404, Title: "domain not found",
			Description: []string{name + " is not registered here"}})
		return
	}
	pr, err := ps.ParseDomain(r.Context(), name, text)
	switch {
	case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrClosed):
		// Saturation and drain both surface as a retryable 503 — the
		// load-shedding contract of the serving layer made visible.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{ErrorCode: 503,
			Title:       "parse capacity exceeded",
			Description: []string{"the parse queue is full; retry shortly"}})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{ErrorCode: 500,
			Title: "parse failed", Description: []string{err.Error()}})
		return
	}
	writeJSON(w, http.StatusOK, ParsedFromRecord(name, pr))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Listen binds the server to addr ("127.0.0.1:0") and serves in the
// background, returning the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rdap: listen %s: %w", addr, err)
	}
	s.addr = l.Addr().String()
	// Full read/write deadlines, not just the header timeout: a client
	// that stalls mid-body or drains responses one byte at a time must not
	// pin a connection (and its goroutine) forever.
	s.httpSrv = &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = s.httpSrv.Serve(l) }()
	return s.addr, nil
}

// Addr returns the bound address ("" before Listen).
func (s *Server) Addr() string { return s.addr }

// Close shuts the HTTP server down.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

// Client fetches RDAP domain objects.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". With a
	// Bootstrap source set it is the fallback for TLDs the bootstrap
	// registry does not map (and for bootstrap fetch failures).
	BaseURL string
	// Bootstrap, when non-nil, resolves the RDAP base serving each
	// domain's TLD from the IANA bootstrap registry (RFC 7484) before
	// falling back to BaseURL — real-world RDAP has no single endpoint.
	Bootstrap *BootstrapSource
	// HTTPClient defaults to a client with a 10s timeout.
	HTTPClient *http.Client
}

// baseFor resolves the server root to query for name.
func (c *Client) baseFor(name string) string {
	if c.Bootstrap != nil {
		if b, err := c.Bootstrap.Get(); err == nil {
			if base, ok := b.BaseFor(name); ok {
				return base
			}
		}
	}
	return c.BaseURL
}

// Lookup fetches and parses /domain/{name}.
func (c *Client) Lookup(name string) (*Domain, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := hc.Get(c.baseFor(name) + "/domain/" + strings.ToLower(name))
	if err != nil {
		return nil, fmt.Errorf("rdap: lookup %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("rdap: %s: not found", name)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rdap: %s: status %d", name, resp.StatusCode)
	}
	var d Domain
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("rdap: decode %s: %w", name, err)
	}
	return &d, nil
}
