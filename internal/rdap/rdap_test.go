package rdap

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/synth"
)

func sample(t *testing.T) *synth.Domain {
	t.Helper()
	return synth.Generate(synth.Config{N: 5, Seed: 801})[0]
}

func TestFromRegistrationRoundTrip(t *testing.T) {
	d := sample(t)
	obj := FromRegistration(&d.Reg)
	data, err := obj.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.LDHName != d.Reg.Domain {
		t.Errorf("ldhName %q, want %q", back.LDHName, d.Reg.Domain)
	}
	reg, ok := back.ContactByRole("registrant")
	if !ok {
		t.Fatal("no registrant entity")
	}
	if reg.Name != d.Reg.Registrant.Name {
		t.Errorf("registrant name %q, want %q", reg.Name, d.Reg.Registrant.Name)
	}
	if reg.Email != d.Reg.Registrant.Email {
		t.Errorf("registrant email %q, want %q", reg.Email, d.Reg.Registrant.Email)
	}
	if reg.Country != d.Reg.Registrant.CountryName {
		t.Errorf("registrant country %q, want %q", reg.Country, d.Reg.Registrant.CountryName)
	}
	when, ok := back.RegistrationDate()
	if !ok || !when.Equal(d.Reg.Created) {
		t.Errorf("registration date %v, want %v", when, d.Reg.Created)
	}
	if len(back.Nameservers) != len(d.Reg.NameServers) {
		t.Errorf("nameservers %d, want %d", len(back.Nameservers), len(d.Reg.NameServers))
	}
	if back.Port43 != d.Reg.WhoisServer {
		t.Errorf("port43 %q", back.Port43)
	}
}

func TestRegistrarEntity(t *testing.T) {
	d := sample(t)
	obj := FromRegistration(&d.Reg)
	rr, ok := obj.ContactByRole("registrar")
	if !ok {
		t.Fatal("no registrar entity")
	}
	if rr.Name != d.Reg.RegistrarName {
		t.Errorf("registrar %q, want %q", rr.Name, d.Reg.RegistrarName)
	}
}

func TestParseRejectsWrongClass(t *testing.T) {
	if _, err := Parse([]byte(`{"objectClassName":"entity"}`)); err == nil {
		t.Fatal("expected class error")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestContactByRoleMissing(t *testing.T) {
	d := sample(t)
	obj := FromRegistration(&d.Reg)
	if _, ok := obj.ContactByRole("billing"); ok {
		t.Error("billing role should be absent")
	}
}

func TestJSONIsValidRDAPShape(t *testing.T) {
	d := sample(t)
	data, err := FromRegistration(&d.Reg).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"objectClassName", "ldhName", "events", "entities", "nameservers"} {
		if _, ok := generic[key]; !ok {
			t.Errorf("RDAP JSON missing %q", key)
		}
	}
	if !strings.Contains(string(data), "vcardArray") {
		t.Error("entities missing vcardArray")
	}
}

func TestServerEndToEnd(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 20, Seed: 802})
	srv := NewServer(domains)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &Client{BaseURL: "http://" + addr}
	d := domains[3]
	obj, err := client.Lookup(strings.ToUpper(d.Reg.Domain)) // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if obj.LDHName != d.Reg.Domain {
		t.Errorf("looked up %q, got %q", d.Reg.Domain, obj.LDHName)
	}
	reg, ok := obj.ContactByRole("registrant")
	if !ok || reg.Name != d.Reg.Registrant.Name {
		t.Errorf("registrant over HTTP: %+v", reg)
	}

	// Unknown domains 404 with an RDAP error object.
	if _, err := client.Lookup("does-not-exist.com"); err == nil {
		t.Error("expected not-found error")
	}
}

// TestStructuredVsStatistical demonstrates the paper's closing argument:
// with a structured protocol there is nothing to learn — extraction is
// exact by construction, for every record.
func TestStructuredVsStatistical(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 200, Seed: 803})
	exact := 0
	for _, d := range domains {
		data, err := FromRegistration(&d.Reg).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		obj, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		c, ok := obj.ContactByRole("registrant")
		if ok && c.Name == d.Reg.Registrant.Name && c.Email == d.Reg.Registrant.Email &&
			c.City == d.Reg.Registrant.City {
			exact++
		}
	}
	if exact != len(domains) {
		t.Errorf("structured extraction exact for %d/%d records; must be all", exact, len(domains))
	}
}
