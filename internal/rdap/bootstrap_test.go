package rdap

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/synth"
)

func fixtureBootstrap(t *testing.T) *Bootstrap {
	t.Helper()
	b, err := LoadBootstrapFile(filepath.Join("testdata", "dns_bootstrap.json"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseBootstrapFixture(t *testing.T) {
	b := fixtureBootstrap(t)
	if b.Version != "1.0" || b.Publication == "" {
		t.Fatalf("header = %q %q", b.Version, b.Publication)
	}
	// com, net, org, info (the empty-urls entry contributes nothing).
	if b.TLDs() != 4 {
		t.Fatalf("TLDs = %d", b.TLDs())
	}

	cases := []struct {
		domain, base string
		ok           bool
	}{
		{"example.com", "https://rdap.example-registry.test/com/v1", true},
		{"EXAMPLE.NET.", "https://rdap.example-registry.test/com/v1", true},
		{"deep.sub.example.com", "https://rdap.example-registry.test/com/v1", true},
		// org lists HTTP first; the HTTPS URL must win.
		{"example.org", "https://rdap.example-org.test", true},
		// info has only HTTP; still usable.
		{"example.info", "http://rdap.example-info.test/rdap", true},
		{"example.dev", "", false},
	}
	for _, c := range cases {
		base, ok := b.BaseFor(c.domain)
		if ok != c.ok || base != c.base {
			t.Errorf("BaseFor(%q) = %q, %v; want %q, %v", c.domain, base, ok, c.base, c.ok)
		}
	}
}

func TestParseBootstrapRejects(t *testing.T) {
	if _, err := ParseBootstrap([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseBootstrap([]byte(`{"version":"1.0","services":[]}`)); err == nil {
		t.Fatal("empty registry accepted")
	}
	if _, err := LoadBootstrapFile("testdata/absent.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBootstrapSourceCachesAndFallsBackStale(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dns.json")
	doc := func(tld, base string) string {
		return fmt.Sprintf(`{"version":"1.0","services":[[[%q],[%q]]]}`, tld, base)
	}
	if err := os.WriteFile(path, []byte(doc("com", "https://one.test/")), 0o644); err != nil {
		t.Fatal(err)
	}

	src := &BootstrapSource{Path: path, TTL: time.Hour}
	b, err := src.Get()
	if err != nil {
		t.Fatal(err)
	}
	if base, _ := b.BaseFor("x.com"); base != "https://one.test" {
		t.Fatalf("base = %q", base)
	}

	// Within TTL the file is not re-read.
	if err := os.WriteFile(path, []byte(doc("com", "https://two.test/")), 0o644); err != nil {
		t.Fatal(err)
	}
	b, _ = src.Get()
	if base, _ := b.BaseFor("x.com"); base != "https://one.test" {
		t.Fatalf("cache bypassed: base = %q", base)
	}

	// Expired TTL picks up the new document.
	src.fetchedAt = time.Now().Add(-2 * time.Hour)
	b, _ = src.Get()
	if base, _ := b.BaseFor("x.com"); base != "https://two.test" {
		t.Fatalf("refresh missed: base = %q", base)
	}

	// A failed refresh serves the stale document instead of erroring.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	src.fetchedAt = time.Now().Add(-2 * time.Hour)
	b, err = src.Get()
	if err != nil {
		t.Fatal(err)
	}
	if base, _ := b.BaseFor("x.com"); base != "https://two.test" {
		t.Fatalf("stale fallback: base = %q", base)
	}

	// No cache and no source: error.
	if _, err := (&BootstrapSource{}).Get(); err == nil {
		t.Fatal("empty source returned a document")
	}
}

func TestClientLooksUpThroughBootstrap(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 8, Seed: 803})
	srv := NewServer(domains)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	target := domains[0].Reg.Domain
	tld := target[strings.LastIndexByte(target, '.')+1:]

	// The bootstrap registry maps this domain's TLD at the live server;
	// BaseURL points into a black hole that must never be contacted for
	// mapped TLDs.
	path := filepath.Join(t.TempDir(), "dns.json")
	doc := fmt.Sprintf(`{"version":"1.0","services":[[[%q],["http://%s/"]]]}`, tld, addr)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	client := &Client{
		BaseURL:   "http://127.0.0.1:1", // unroutable fallback
		Bootstrap: &BootstrapSource{Path: path},
	}
	obj, err := client.Lookup(target)
	if err != nil {
		t.Fatal(err)
	}
	if obj.LDHName != target {
		t.Fatalf("looked up %q, got %q", target, obj.LDHName)
	}

	// An unmapped TLD falls back to BaseURL — here a live server again,
	// proving the fallback path actually queries.
	client2 := &Client{BaseURL: "http://" + addr, Bootstrap: &BootstrapSource{Path: path}}
	if _, err := client2.Lookup("unmapped.zz-not-in-registry"); err == nil {
		t.Fatal("lookup of absent domain succeeded")
	} else if !strings.Contains(err.Error(), "not found") {
		t.Fatalf("fallback did not reach the server: %v", err)
	}
}
