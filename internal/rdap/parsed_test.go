package rdap

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

func TestParsedFromRecord(t *testing.T) {
	pr := &core.ParsedRecord{
		Registrar:   "Example Registrar",
		WhoisServer: "whois.example.com",
		CreatedDate: "2014-03-04",
		ExpiresDate: "2024-03-04",
		Registrant:  core.Contact{Name: "Alice", Country: "US"},
		Blocks:      []labels.Block{labels.Registrar, labels.Registrant},
		Fields:      []labels.Field{labels.FieldOther, labels.FieldName},
	}
	pr.Lines = make([]tokenize.Line, 2) // lengths must align with Blocks/Fields
	d := ParsedFromRecord("example.com", pr)

	if d.ObjectClassName != "domain" || d.LDHName != "example.com" {
		t.Errorf("header: %+v", d)
	}
	if d.Source != "statistical-whois-parse" {
		t.Errorf("Source = %q", d.Source)
	}
	if d.Registrar != "Example Registrar" || d.Port43 != "whois.example.com" {
		t.Errorf("registrar fields: %+v", d)
	}
	if len(d.Events) != 2 { // created + expires, no updated
		t.Fatalf("events: %+v", d.Events)
	}
	if d.Events[0].EventAction != "registration" || d.Events[0].EventDate != "2014-03-04" {
		t.Errorf("registration event: %+v", d.Events[0])
	}
	if d.Registrant == nil || d.Registrant.Name != "Alice" || d.Registrant.Country != "US" {
		t.Errorf("registrant: %+v", d.Registrant)
	}
	if len(d.Lines) != 2 || d.Lines[0].Block != "registrar" || d.Lines[1].Block != "registrant" {
		t.Fatalf("lines: %+v", d.Lines)
	}
	if d.Lines[0].Field != "" {
		t.Error("field label must be omitted outside registrant blocks")
	}
	if d.Lines[1].Field != "name" {
		t.Errorf("registrant line field = %q, want \"name\"", d.Lines[1].Field)
	}
}

func TestParsedFromRecordEmptyRegistrant(t *testing.T) {
	d := ParsedFromRecord("x.com", &core.ParsedRecord{})
	if d.Registrant != nil {
		t.Error("empty registrant contact must marshal as absent, not all-empty")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := NewServer(synth.Generate(synth.Config{N: 3, Seed: 810}))
	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(method, "/domain/x.com", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s: status %d, want 405", method, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("%s: Allow = %q, want GET listed", method, allow)
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.ErrorCode != 405 {
			t.Errorf("%s: body %s", method, rec.Body.String())
		}
	}
	// HEAD stays a lookup, per RFC 7480.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodHead, "/domain/x.com", nil))
	if rec.Code == http.StatusMethodNotAllowed {
		t.Error("HEAD must not be rejected as a method error")
	}
}

func TestParsedEndpointNotEnabled(t *testing.T) {
	srv := NewServer(synth.Generate(synth.Config{N: 3, Seed: 811}))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/parsed/x.com", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Errorf("status %d, want 501 when no parser is wired", rec.Code)
	}
}

func TestParsedEndpoint(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 10, Seed: 812})
	srv := NewServer(domains)
	ps := serve.NewFunc(func(text string) *core.ParsedRecord {
		return &core.ParsedRecord{Registrant: core.Contact{Name: "FAKE PARSE"}}
	}, serve.Options{Workers: 2})
	defer ps.Close()
	srv.EnableParsed(ps, domains)

	name := strings.ToLower(domains[0].Reg.Domain)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/parsed/"+name, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/rdap+json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var d ParsedDomain
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.LDHName != name || d.ObjectClassName != "domain" {
		t.Errorf("parsed object: %+v", d)
	}
	if d.Registrant == nil || d.Registrant.Name != "FAKE PARSE" {
		t.Errorf("registrant: %+v", d.Registrant)
	}

	// Unknown domains 404.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/parsed/missing.example", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown domain: status %d, want 404", rec.Code)
	}

	// Repeated requests are served from the cache: one parse total.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/parsed/"+name, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("second lookup: status %d", rec.Code)
	}
	if st := ps.Stats(); st.Parsed != 1 || st.Hits != 1 {
		t.Errorf("stats after repeat = %+v, want parsed=1 hits=1", st)
	}
}

func TestParsedEndpointSheds503(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 4, Seed: 813})
	srv := NewServer(domains)
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	ps := serve.NewFunc(func(text string) *core.ParsedRecord {
		started <- struct{}{}
		<-release
		return &core.ParsedRecord{}
	}, serve.Options{Workers: 1, QueueDepth: 1})
	defer ps.Close()
	defer close(release)
	srv.EnableParsed(ps, domains)

	// Saturate the worker and the queue with two other domains.
	go ps.Parse(context.Background(), "other record 1")
	<-started
	go ps.Parse(context.Background(), "other record 2")
	deadline := time.Now().Add(5 * time.Second)
	for ps.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/parsed/"+strings.ToLower(domains[0].Reg.Domain), nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 must carry Retry-After")
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.ErrorCode != 503 {
		t.Errorf("body: %s", rec.Body.String())
	}
}
