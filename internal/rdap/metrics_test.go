package rdap

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/synth"
)

// TestDebugVarsAfterTraffic is the acceptance path for the observability
// layer: an instrumented RDAP server backed by an instrumented serving
// layer, traffic through /parsed/{name}, then a scrape of /debug/vars
// (the same mux rdapd mounts behind --debug-addr) asserting the serve
// cache counters and the parse-latency histogram are live.
func TestDebugVarsAfterTraffic(t *testing.T) {
	reg := obs.NewRegistry()
	domains := synth.Generate(synth.Config{N: 8, Seed: 814})
	srv := NewServer(domains)
	srv.Instrument(reg)
	ps := serve.NewFunc(func(text string) *core.ParsedRecord {
		return &core.ParsedRecord{Registrar: "R"}
	}, serve.Options{Workers: 2, Metrics: reg})
	defer ps.Close()
	srv.EnableParsed(ps, domains)

	name := strings.ToLower(domains[0].Reg.Domain)
	for _, path := range []string{
		"/parsed/" + name,        // miss: one real parse
		"/parsed/" + name,        // hit: served from cache
		"/parsed/absent.example", // 404
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
	}

	// Scrape the debug mux exactly as an operator would.
	ts := httptest.NewServer(obs.DebugMux(reg))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}

	counter := func(name string) float64 {
		v, ok := vars[name].(float64)
		if !ok {
			t.Fatalf("%s missing or not a number in /debug/vars: %v", name, vars[name])
		}
		return v
	}
	if got := counter("serve.cache.hits"); got != 1 {
		t.Errorf("serve.cache.hits = %v, want 1", got)
	}
	if got := counter("serve.cache.misses"); got != 1 {
		t.Errorf("serve.cache.misses = %v, want 1", got)
	}
	if got := counter("serve.shed"); got != 0 {
		t.Errorf("serve.shed = %v, want 0", got)
	}
	if got := counter("rdap.requests"); got != 3 {
		t.Errorf("rdap.requests = %v, want 3", got)
	}
	if got := counter("rdap.notfound"); got != 1 {
		t.Errorf("rdap.notfound = %v, want 1", got)
	}

	hist, ok := vars["serve.parse.seconds"].(map[string]any)
	if !ok {
		t.Fatalf("serve.parse.seconds missing or not a histogram: %v", vars["serve.parse.seconds"])
	}
	if n, _ := hist["count"].(float64); n < 1 {
		t.Errorf("serve.parse.seconds count = %v, want >= 1 after traffic", hist["count"])
	}
	if buckets, _ := hist["buckets"].([]any); len(buckets) == 0 {
		t.Error("serve.parse.seconds has no buckets after traffic")
	}
}
