package rdap

import (
	"repro/internal/core"
	"repro/internal/labels"
)

// ParsedDomain is the RDAP-flavored JSON served by /parsed/{name}: the
// output of running the statistical parser (internal/core) over the raw
// free-text WHOIS record, shaped like an RDAP domain object. Where
// /domain/{name} serves registry ground truth, /parsed/{name} serves the
// CRF's *reading* of the record — the bridge PAPERS.md's "WHOIS Right?"
// consistency work motivates: the same structured schema from both the
// structured and the free-text pipelines, directly comparable.
type ParsedDomain struct {
	ObjectClassName string `json:"objectClassName"` // always "domain"
	LDHName         string `json:"ldhName"`
	// Source distinguishes this view from authoritative RDAP data.
	Source string `json:"source"` // always "statistical-whois-parse"

	Registrar    string `json:"registrar,omitempty"`
	RegistrarURL string `json:"registrarUrl,omitempty"`
	Port43       string `json:"port43,omitempty"`

	// Events carry the extracted date strings verbatim — the parser
	// labels lines, it does not normalize timestamps.
	Events []ParsedEvent `json:"events,omitempty"`

	// Registrant holds the second-level CRF's subfield extraction.
	Registrant *ParsedContact `json:"registrant,omitempty"`

	// Lines is the per-line labeling: the record as the CRF segmented
	// it, for auditing a parse rather than consuming fields.
	Lines []ParsedLine `json:"lines"`
}

// ParsedEvent mirrors Event with the raw extracted date string.
type ParsedEvent struct {
	EventAction string `json:"eventAction"`
	EventDate   string `json:"eventDate"`
}

// ParsedContact is the extracted registrant block.
type ParsedContact struct {
	Name     string `json:"name,omitempty"`
	ID       string `json:"id,omitempty"`
	Org      string `json:"org,omitempty"`
	Street   string `json:"street,omitempty"`
	City     string `json:"city,omitempty"`
	State    string `json:"state,omitempty"`
	Postcode string `json:"postcode,omitempty"`
	Country  string `json:"country,omitempty"`
	Phone    string `json:"phone,omitempty"`
	Fax      string `json:"fax,omitempty"`
	Email    string `json:"email,omitempty"`
}

// ParsedLine is one labeled line of the record. Field is present only
// on registrant lines, where the second-level CRF applies.
type ParsedLine struct {
	Title string `json:"title,omitempty"`
	Value string `json:"value,omitempty"`
	Block string `json:"block"`
	Field string `json:"field,omitempty"`
}

// ParsedFromRecord shapes a statistical parse as RDAP-flavored JSON.
func ParsedFromRecord(name string, pr *core.ParsedRecord) *ParsedDomain {
	d := &ParsedDomain{
		ObjectClassName: "domain",
		LDHName:         name,
		Source:          "statistical-whois-parse",
		Registrar:       pr.Registrar,
		RegistrarURL:    pr.RegistrarURL,
		Port43:          pr.WhoisServer,
	}
	addEvent := func(action, date string) {
		if date != "" {
			d.Events = append(d.Events, ParsedEvent{EventAction: action, EventDate: date})
		}
	}
	addEvent("registration", pr.CreatedDate)
	addEvent("last changed", pr.UpdatedDate)
	addEvent("expiration", pr.ExpiresDate)

	if c := pr.Registrant; c != (core.Contact{}) {
		d.Registrant = &ParsedContact{
			Name: c.Name, ID: c.ID, Org: c.Org, Street: c.Street,
			City: c.City, State: c.State, Postcode: c.Postcode,
			Country: c.Country, Phone: c.Phone, Fax: c.Fax, Email: c.Email,
		}
	}

	d.Lines = make([]ParsedLine, len(pr.Lines))
	for i, ln := range pr.Lines {
		pl := ParsedLine{Title: ln.Title, Value: ln.Value, Block: pr.Blocks[i].String()}
		if pr.Blocks[i] == labels.Registrant {
			pl.Field = pr.Fields[i].String()
		}
		d.Lines[i] = pl
	}
	return d
}
