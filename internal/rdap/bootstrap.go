package rdap

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// Bootstrap is the IANA RDAP bootstrap registry for DNS (the dns.json
// document of RFC 7484): a mapping from TLD to the RDAP base URLs of
// the registry serving it. Real-world RDAP has no single endpoint —
// "who is .com?" is itself a lookup — so a client first resolves the
// domain's TLD through this registry, then queries the returned base.
type Bootstrap struct {
	// Publication is the document's publication timestamp, verbatim.
	Publication string
	// Version is the registry format version ("1.0").
	Version string
	// services maps lowercase TLD → base URL (first HTTPS URL of the
	// service entry, trailing slash trimmed).
	services map[string]string
}

// bootstrapDoc is the wire shape: services is a list of
// [[tld, ...], [url, ...]] pairs.
type bootstrapDoc struct {
	Description string       `json:"description"`
	Publication string       `json:"publication"`
	Version     string       `json:"version"`
	Services    [][][]string `json:"services"`
}

// ParseBootstrap parses a dns.json bootstrap document.
func ParseBootstrap(data []byte) (*Bootstrap, error) {
	var doc bootstrapDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("rdap: bootstrap: %w", err)
	}
	b := &Bootstrap{
		Publication: doc.Publication,
		Version:     doc.Version,
		services:    make(map[string]string),
	}
	for _, svc := range doc.Services {
		if len(svc) != 2 || len(svc[0]) == 0 || len(svc[1]) == 0 {
			continue
		}
		base := pickBase(svc[1])
		if base == "" {
			continue
		}
		for _, tld := range svc[0] {
			b.services[strings.ToLower(tld)] = base
		}
	}
	if len(b.services) == 0 {
		return nil, fmt.Errorf("rdap: bootstrap: no usable service entries")
	}
	return b, nil
}

// pickBase chooses a service entry's base URL: the first HTTPS URL,
// else the first URL. Trailing slashes are trimmed so Lookup's
// "/domain/" join is uniform.
func pickBase(urls []string) string {
	pick := ""
	for _, u := range urls {
		if u == "" {
			continue
		}
		if pick == "" {
			pick = u
		}
		if strings.HasPrefix(u, "https://") {
			pick = u
			break
		}
	}
	return strings.TrimRight(pick, "/")
}

// LoadBootstrapFile parses a bootstrap document from disk — the
// fixture-backed path used in tests and offline runs.
func LoadBootstrapFile(path string) (*Bootstrap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rdap: bootstrap: %w", err)
	}
	return ParseBootstrap(data)
}

// TLDs returns the number of TLDs the registry maps.
func (b *Bootstrap) TLDs() int { return len(b.services) }

// BaseFor resolves the RDAP base URL serving domain (matched by its
// final label). The second return is false when the registry has no
// entry for the TLD.
func (b *Bootstrap) BaseFor(domain string) (string, bool) {
	name := strings.ToLower(strings.TrimSuffix(domain, "."))
	tld := name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		tld = name[i+1:]
	}
	base, ok := b.services[tld]
	return base, ok
}

// BootstrapSource fetches and caches a bootstrap document. The zero
// value is unusable; set URL or Path. Safe for concurrent use.
type BootstrapSource struct {
	// URL is the registry location (IANA publishes
	// https://data.iana.org/rdap/dns.json); fetched lazily.
	URL string
	// Path, when set, reads the document from disk instead — fixtures,
	// or an operator-managed mirror.
	Path string
	// TTL bounds how long a fetched document is reused; <= 0 means 24h
	// (the registry changes on the cadence of TLD delegations).
	TTL time.Duration
	// HTTPClient defaults to a client with a 10s timeout.
	HTTPClient *http.Client

	mu        sync.Mutex
	cached    *Bootstrap
	fetchedAt time.Time
}

// Get returns the current bootstrap document, refetching only when the
// cache is empty or older than TTL. A refresh failure returns the stale
// document when one is cached — a flaky registry should not take down
// lookups that were working a second ago.
func (s *BootstrapSource) Get() (*Bootstrap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ttl := s.TTL
	if ttl <= 0 {
		ttl = 24 * time.Hour
	}
	if s.cached != nil && time.Since(s.fetchedAt) < ttl {
		return s.cached, nil
	}
	b, err := s.fetch()
	if err != nil {
		if s.cached != nil {
			return s.cached, nil
		}
		return nil, err
	}
	s.cached = b
	s.fetchedAt = time.Now()
	return b, nil
}

func (s *BootstrapSource) fetch() (*Bootstrap, error) {
	if s.Path != "" {
		return LoadBootstrapFile(s.Path)
	}
	if s.URL == "" {
		return nil, fmt.Errorf("rdap: bootstrap source has no URL or Path")
	}
	hc := s.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := hc.Get(s.URL)
	if err != nil {
		return nil, fmt.Errorf("rdap: bootstrap fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rdap: bootstrap fetch: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("rdap: bootstrap fetch: %w", err)
	}
	return ParseBootstrap(data)
}
