package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the daemon debug surface over a registry: /debug/vars
// serves the metrics snapshot as JSON (expvar-style), and /debug/pprof/
// exposes the standard runtime profiles. The handlers are registered
// explicitly on a private mux — importing this package does not touch
// http.DefaultServeMux. Daemons mount it behind an operator-only
// address (rdapd --debug-addr, whoisd/whoissurvey --metrics-addr).
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", r)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
