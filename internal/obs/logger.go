package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Level is a log severity. Records below the logger's level are dropped
// before any formatting work happens.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level as its key=value token.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// Logger is a leveled key=value logger. It replaces the ad-hoc
// `Logf func(format string, args ...any)` fields that used to be
// scattered across crawler/whoisd configs: a nil *Logger is valid and
// drops everything, so callers need no nil checks, and the sink can be
// swapped at runtime (e.g. redirected to a file on SIGHUP) without
// synchronizing the writers.
//
// One record is one line:
//
//	ts=2026-08-06T12:00:00Z level=warn comp=whoisd msg="write failed" peer=127.0.0.2 err="broken pipe"
type Logger struct {
	state *loggerState
	comp  string
	ctx   string // pre-rendered " k=v" pairs from With
}

// loggerState is shared across a logger and all its With-derived
// children, so SetLevel/SetSink on any of them affects the family.
type loggerState struct {
	level atomic.Int32
	sink  atomic.Pointer[sinkBox]
}

// sinkBox wraps the writer interface so it can live in an
// atomic.Pointer.
type sinkBox struct{ w io.Writer }

// NewLogger builds a logger for one component writing to sink at
// LevelInfo. The sink's Write must be safe for concurrent use (os.Stderr
// is; wrap test buffers in a lock).
func NewLogger(component string, sink io.Writer) *Logger {
	st := &loggerState{}
	st.level.Store(int32(LevelInfo))
	st.sink.Store(&sinkBox{w: sink})
	return &Logger{state: st, comp: component}
}

// SetLevel changes the minimum level for this logger and all loggers
// derived from it with With.
func (l *Logger) SetLevel(lv Level) {
	if l == nil {
		return
	}
	l.state.level.Store(int32(lv))
}

// SetSink atomically swaps the output writer for this logger family.
func (l *Logger) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.state.sink.Store(&sinkBox{w: w})
}

// Enabled reports whether records at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.state.level.Load()
}

// With returns a child logger whose records carry the given key=value
// pairs in addition to the parent's. With on a nil logger is nil.
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString(l.ctx)
	appendKVs(&b, kvs)
	return &Logger{state: l.state, comp: l.comp, ctx: b.String()}
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kvs ...any) { l.log(LevelDebug, msg, kvs) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kvs ...any) { l.log(LevelInfo, msg, kvs) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kvs ...any) { l.log(LevelWarn, msg, kvs) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kvs ...any) { l.log(LevelError, msg, kvs) }

func (l *Logger) log(lv Level, msg string, kvs []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.Grow(128)
	b.WriteString("ts=")
	b.WriteString(time.Now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	if l.comp != "" {
		b.WriteString(" comp=")
		writeValue(&b, l.comp)
	}
	b.WriteString(" msg=")
	writeValue(&b, msg)
	b.WriteString(l.ctx)
	appendKVs(&b, kvs)
	b.WriteByte('\n')
	// One Write call per record so concurrent records do not interleave
	// mid-line (both os.Stderr and locked buffers honor this).
	_, _ = io.WriteString(l.state.sink.Load().w, b.String())
}

// appendKVs renders alternating key, value pairs; a trailing odd value
// is logged under the key "!badkey" rather than dropped.
func appendKVs(b *strings.Builder, kvs []any) {
	for i := 0; i < len(kvs); i += 2 {
		b.WriteByte(' ')
		if i+1 >= len(kvs) {
			b.WriteString("!badkey=")
			writeValue(b, fmt.Sprint(kvs[i]))
			return
		}
		b.WriteString(fmt.Sprint(kvs[i]))
		b.WriteByte('=')
		writeValue(b, fmt.Sprint(kvs[i+1]))
	}
}

// writeValue quotes values that would break the key=value grammar.
func writeValue(b *strings.Builder, s string) {
	if needsQuote(s) {
		b.WriteString(strconv.Quote(s))
		return
	}
	b.WriteString(s)
}

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return true
		}
	}
	return false
}
