package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are lock-free and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) snapshotValue() any { return c.v.Load() }

// Gauge is a current-value metric that can move both ways. The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) snapshotValue() any { return g.v.Load() }

// gaugeFunc is a snapshot-time computed gauge.
type gaugeFunc func() float64

func (f gaugeFunc) snapshotValue() any { return f() }

// Histogram is a fixed-bucket histogram with lock-free observation:
// bucket upper bounds are set at construction, each observation does one
// binary search plus three atomic adds. Unlike the ring buffer it
// replaces in internal/serve, it never reports values from unfilled
// slots and its memory does not grow with traffic.
type Histogram struct {
	bounds []float64       // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DurationBounds is the default bucket layout for latency histograms, in
// seconds: roughly logarithmic from 1µs to 10s — wide enough for an
// 856ns cache hit and a stalled 10s parse to land in distinct buckets.
func DurationBounds() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// UnitBounds is the default bucket layout for probabilities and other
// [0, 1] quantities (e.g. per-record minimum posterior confidence).
func UnitBounds() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}
}

// SizeBounds is the default bucket layout for byte-size histograms
// (record frames, artifact payloads): powers of four from 64 B to 1 GiB,
// so a 200-byte thin record and a 16 MiB pathological frame land far
// apart.
func SizeBounds() []float64 {
	return []float64{
		64, 256, 1024, 4096, 16384, 65536,
		1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30,
	}
}

// NewHistogram builds a histogram over the given ascending upper bounds;
// nil or empty bounds default to DurationBounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBounds()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	if !sort.Float64sAreSorted(b) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.ObserveDuration(time.Since(t0)) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the p-quantile (0 < p <= 1) by linear interpolation
// inside the bucket holding the target rank. Values beyond the last
// bound are reported as the last bound. Returns 0 with no observations.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	lower := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			if i < len(h.bounds) {
				lower = h.bounds[i]
			}
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				return lower // overflow bucket: clamp to the last bound
			}
			upper := h.bounds[i]
			frac := float64(rank-cum) / float64(n)
			return lower + frac*(upper-lower)
		}
		cum += n
		lower = h.bounds[i]
	}
	return lower
}

// QuantileDuration is Quantile for latency histograms, in time.Duration.
func (h *Histogram) QuantileDuration(p float64) time.Duration {
	return time.Duration(h.Quantile(p) * float64(time.Second))
}

// Merge adds src's observations into h. Both histograms must share the
// same bucket bounds. Safe to run concurrently with observations on
// either side.
func (h *Histogram) Merge(src *Histogram) error {
	if len(h.bounds) != len(src.bounds) {
		return fmt.Errorf("obs: merge of mismatched histograms (%d vs %d buckets)", len(h.bounds), len(src.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != src.bounds[i] {
			return fmt.Errorf("obs: merge of mismatched histograms (bound %d: %g vs %g)", i, h.bounds[i], src.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i].Add(src.counts[i].Load())
	}
	h.count.Add(src.count.Load())
	add := src.Sum()
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + add)
		if h.sum.CompareAndSwap(old, next) {
			return nil
		}
	}
}

func (h *Histogram) snapshotValue() any {
	type bucket struct {
		Le float64 `json:"le"`
		N  uint64  `json:"n"`
	}
	buckets := []bucket{} // non-nil: an idle histogram renders as [], not null
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue // keep /debug/vars readable; empty buckets carry no information
		}
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		if math.IsInf(le, 1) {
			le = -1 // JSON has no +Inf; -1 marks the overflow bucket
		}
		buckets = append(buckets, bucket{Le: le, N: n})
	}
	return map[string]any{
		"count":   h.count.Load(),
		"sum":     h.Sum(),
		"p50":     h.Quantile(0.50),
		"p90":     h.Quantile(0.90),
		"p99":     h.Quantile(0.99),
		"buckets": buckets,
	}
}
