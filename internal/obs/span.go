package obs

import (
	"context"
	"time"
)

// Spans are the lightweight tracing half of the package: a span times
// one stage ("parse", "crawl.thick", "rdap.parsed") and records its
// duration and outcome into the registry under <name>.seconds,
// <name>.calls, and <name>.errors. There is no propagation or sampling —
// just per-stage latency and error visibility at ~two time.Now calls of
// overhead.

type registryKey struct{}

// WithRegistry returns a context carrying r; Start on that context
// records into r instead of Default.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, r)
}

// RegistryFrom returns the registry attached to ctx, or Default.
func RegistryFrom(ctx context.Context) *Registry {
	if r, ok := ctx.Value(registryKey{}).(*Registry); ok && r != nil {
		return r
	}
	return Default
}

// Span is one in-progress timed stage. End it exactly once.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// Start begins a span named name against the context's registry and
// returns the (unchanged) context alongside it.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, RegistryFrom(ctx).Start(name)
}

// Start begins a span recording into this registry.
func (r *Registry) Start(name string) *Span {
	return &Span{r: r, name: name, start: time.Now()}
}

// End records the span's duration and outcome: <name>.calls always
// increments, <name>.errors increments when err is non-nil, and the
// elapsed time lands in the <name>.seconds histogram. End on a nil span
// is a no-op.
func (s *Span) End(err error) {
	if s == nil || s.r == nil {
		return
	}
	s.r.Histogram(s.name+".seconds", DurationBounds()).ObserveSince(s.start)
	s.r.Counter(s.name + ".calls").Inc()
	if err != nil {
		s.r.Counter(s.name + ".errors").Inc()
	}
}
