package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.hits") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("a.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("Gauge on a counter name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1, 2] bucket
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Sum(); math.Abs(got-150) > 1e-9 {
		t.Errorf("sum = %g, want 150", got)
	}
	p50 := h.Quantile(0.50)
	if p50 <= 1 || p50 > 2 {
		t.Errorf("p50 = %g, want within (1, 2]", p50)
	}
	// Values beyond the last bound clamp to it.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want 2 (last bound)", got)
	}
	if got := NewHistogram(nil).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveDuration(2 * time.Millisecond)
	if d := h.QuantileDuration(0.5); d < time.Millisecond || d > 3*time.Millisecond {
		t.Errorf("p50 duration = %s, want ~2ms (bucket-estimated)", d)
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 3})
	if err := a.Merge(b); err == nil {
		t.Error("merge of mismatched bounds succeeded")
	}
}

// TestSnapshotJSONRoundTrip is the /debug/vars contract: the handler's
// output must round-trip through encoding/json and carry every metric.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.cache.hits").Add(3)
	r.Gauge("serve.queue.depth").Set(2)
	r.GaugeFunc("serve.cache.entries", func() float64 { return 11 })
	h := r.Histogram("serve.parse.seconds", DurationBounds())
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(40 * time.Microsecond)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}

	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("handler output is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if got := decoded["serve.cache.hits"]; got != float64(3) {
		t.Errorf("hits = %v, want 3", got)
	}
	if got := decoded["serve.queue.depth"]; got != float64(2) {
		t.Errorf("depth = %v, want 2", got)
	}
	if got := decoded["serve.cache.entries"]; got != float64(11) {
		t.Errorf("entries = %v, want 11", got)
	}
	hist, ok := decoded["serve.parse.seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram snapshot is %T, want object", decoded["serve.parse.seconds"])
	}
	if hist["count"] != float64(2) {
		t.Errorf("histogram count = %v, want 2", hist["count"])
	}
	if buckets, ok := hist["buckets"].([]any); !ok || len(buckets) != 2 {
		t.Errorf("buckets = %v, want two non-empty buckets", hist["buckets"])
	}
	// Re-encode: the snapshot itself must be marshalable as-is.
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Errorf("snapshot not marshalable: %v", err)
	}
}

func TestDebugMuxServesVarsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	mux := DebugMux(r)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if decoded["x"] != float64(1) {
		t.Errorf("/debug/vars x = %v, want 1", decoded["x"])
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/ status %d, body lacks profile index", rec.Code)
	}
}

func TestLoggerFormatAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger("whoisd", &buf)
	l.Debug("dropped")
	l.Info("query served", "peer", "127.0.0.1", "bytes", 512)
	l.Warn("write failed", "err", errors.New("broken pipe"))
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Error("debug record written at info level")
	}
	if !strings.Contains(out, `level=info comp=whoisd msg="query served" peer=127.0.0.1 bytes=512`) {
		t.Errorf("info line malformed: %s", out)
	}
	if !strings.Contains(out, `msg="write failed" err="broken pipe"`) {
		t.Errorf("warn line malformed: %s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "ts=") {
			t.Errorf("line lacks timestamp: %s", line)
		}
	}

	l.SetLevel(LevelDebug)
	buf.Reset()
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "level=debug") {
		t.Error("debug record missing after SetLevel(LevelDebug)")
	}

	buf.Reset()
	l.Info("odd", "key-without-value")
	if !strings.Contains(buf.String(), "!badkey=key-without-value") {
		t.Errorf("odd kv list not flagged: %s", buf.String())
	}
}

func TestLoggerWithAndNil(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger("crawler", &buf)
	child := l.With("server", "whois.example.com")
	child.Info("rate limited", "attempt", 2)
	if !strings.Contains(buf.String(), "server=whois.example.com attempt=2") {
		t.Errorf("With context missing: %s", buf.String())
	}

	var nilLogger *Logger
	nilLogger.Info("must not panic")
	nilLogger.SetLevel(LevelDebug)
	nilLogger.SetSink(&buf)
	if nilLogger.With("a", 1) != nil {
		t.Error("With on nil logger should stay nil")
	}
	if nilLogger.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestSpanRecordsDurationAndOutcome(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	if RegistryFrom(ctx) != r {
		t.Fatal("RegistryFrom lost the registry")
	}
	if RegistryFrom(context.Background()) != Default {
		t.Fatal("RegistryFrom without registry should be Default")
	}

	_, sp := Start(ctx, "parse")
	time.Sleep(time.Millisecond)
	sp.End(nil)
	_, sp = Start(ctx, "parse")
	sp.End(errors.New("boom"))

	if got := r.Counter("parse.calls").Value(); got != 2 {
		t.Errorf("parse.calls = %d, want 2", got)
	}
	if got := r.Counter("parse.errors").Value(); got != 1 {
		t.Errorf("parse.errors = %d, want 1", got)
	}
	h := r.Histogram("parse.seconds", nil)
	if h.Count() != 2 || h.Sum() <= 0 {
		t.Errorf("parse.seconds count=%d sum=%g, want 2 observations with positive sum", h.Count(), h.Sum())
	}

	var nilSpan *Span
	nilSpan.End(nil) // must not panic
}
