package obs

// Race-detector-targeted tests: every shared structure in the package is
// hammered from many goroutines at once. `make race` runs this package
// with -race; the assertions double as lost-update checks (atomic
// counters must not drop increments under contention).

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestConcurrentCounterIncrements(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the goroutines race the lazy registration path too.
			c := r.Counter("hot.counter")
			for i := 0; i < perG; i++ {
				c.Inc()
				r.Gauge("hot.gauge").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hot.counter").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d (lost updates)", got, goroutines*perG)
	}
	if got := r.Gauge("hot.gauge").Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d (lost updates)", got, goroutines*perG)
	}
}

func TestConcurrentHistogramObserveAndMerge(t *testing.T) {
	dst := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	const workers, perW = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
			for i := 0; i < perW; i++ {
				local.Observe(float64(i%4) * 0.03)
				dst.Observe(0.05) // direct observation racing the merges
			}
			if err := dst.Merge(local); err != nil {
				t.Errorf("merge: %v", err)
			}
		}(w)
	}
	wg.Wait()
	want := uint64(2 * workers * perW)
	if got := dst.Count(); got != want {
		t.Errorf("merged count = %d, want %d", got, want)
	}
	if dst.Quantile(0.5) <= 0 {
		t.Error("merged histogram has non-positive median")
	}
}

// lockedBuffer is a concurrency-safe sink for the swap test.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestLoggerSinkSwapUnderLoad(t *testing.T) {
	first, second := &lockedBuffer{}, &lockedBuffer{}
	l := NewLogger("swap", io.Discard)
	l.SetSink(first)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					l.Info("tick", "g", g, "i", i)
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	l.SetSink(second)
	l.SetLevel(LevelWarn) // racing level change as well
	l.SetLevel(LevelInfo)
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	for name, buf := range map[string]*lockedBuffer{"first": first, "second": second} {
		out := buf.String()
		if out == "" {
			t.Errorf("%s sink received no records", name)
			continue
		}
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
				t.Errorf("%s sink has an interleaved/garbled line: %q", name, line)
				break
			}
		}
	}
}

func TestConcurrentSnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					r.Counter(fmt.Sprintf("c.%d", g)).Inc()
					r.Histogram("h", nil).Observe(0.001)
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WriteJSON(&sb); err != nil {
			t.Errorf("WriteJSON during writes: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentSpans(t *testing.T) {
	r := NewRegistry()
	const workers, perW = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				sp := r.Start("stage")
				sp.End(nil)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("stage.calls").Value(); got != workers*perW {
		t.Errorf("stage.calls = %d, want %d", got, workers*perW)
	}
}
