// Package obs is the repo's stdlib-only observability layer: lock-free
// counters, gauges, and fixed-bucket histograms collected in a Registry
// that snapshots to expvar-compatible JSON; a leveled key=value logger
// with a swappable sink that replaces the scattered `Logf func(...)`
// callbacks; and a lightweight span API that records per-stage duration
// and outcome.
//
// The paper's production framing (102M records in §6, the ROADMAP's
// "heavy traffic from millions of users") makes per-stage visibility a
// first-class requirement: the serve cache, the CRF decode path, the
// crawler, and the daemons all report through this package, and the
// daemons expose the registry at /debug/vars (rdapd --debug-addr,
// whoisd/whoissurvey --metrics-addr).
//
// Metric naming scheme (see DESIGN.md §5c): dot-separated lowercase
// paths, `<component>.<subsystem>.<metric>`; counters are cumulative
// event counts, gauges are current values, histograms carry a unit
// suffix (`.seconds`, `.bytes`). Span stages record under
// `<stage>.seconds`, `<stage>.calls`, and `<stage>.errors`.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Registry is a concurrent-safe collection of named metrics. Metrics are
// created lazily and idempotently: two goroutines asking for the same
// counter name get the same counter. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
	order   []string
}

// metric is anything the registry can snapshot to a JSON value.
type metric interface {
	snapshotValue() any
}

// Default is the process-wide registry used when no explicit registry is
// supplied (e.g. obs.Start on a context with no registry attached).
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// lookup returns the named metric, creating it with mk on first use. It
// panics when the existing metric has a different kind — that is a
// programming error (two subsystems fighting over one name).
func (r *Registry) lookup(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	m := r.lookup(name, func() metric { return new(Counter) })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not Counter", name, m))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.lookup(name, func() metric { return new(Gauge) })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not Gauge", name, m))
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at snapshot time —
// for quantities the owner already tracks (queue depth, cache entries).
// Re-registering the same name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; !ok {
		r.order = append(r.order, name)
	}
	r.metrics[name] = gaugeFunc(fn)
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls may pass nil bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m := r.lookup(name, func() metric { return NewHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T, not Histogram", name, m))
	}
	return h
}

// Snapshot returns a point-in-time, JSON-marshalable view of every
// metric: counters and gauges as numbers, histograms as objects with
// count, sum, estimated quantiles, and per-bucket counts. Values read
// concurrently with updates are individually atomic but not mutually
// consistent — good enough for monitoring.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	r.mu.Unlock()
	out := make(map[string]any, len(names))
	for i, n := range names {
		out[n] = ms[i].snapshotValue()
	}
	return out
}

// WriteJSON writes the snapshot as one expvar-style JSON object with
// keys in sorted order.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, n := range names {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		} else if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		key, err := json.Marshal(n)
		if err != nil {
			return err
		}
		val, err := json.Marshal(snap[n])
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s: %s", key, val); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// ServeHTTP serves the snapshot as application/json — the handler behind
// /debug/vars on the daemons.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = r.WriteJSON(w)
}
