package whoisparse_test

import (
	"fmt"

	whoisparse "repro"
)

// Train a parser on labeled examples and parse a record the parser has
// never seen.
func Example() {
	corpus := whoisparse.GenerateCorpus(whoisparse.CorpusConfig{N: 300, Seed: 42})
	parser, _, err := whoisparse.Train(corpus, whoisparse.DefaultConfig())
	if err != nil {
		panic(err)
	}

	record := `Domain Name: example-parse.com
Registrar: Example Registrar, Inc.
Creation Date: 2012-04-05
Registrant Name: Grace Hopper
Registrant Organization: COBOL Heritage Society
Registrant City: Arlington
Registrant Country: US
Registrant Email: grace@cobol.example`

	parsed := parser.Parse(record)
	fmt.Println(parsed.Registrant.Name)
	fmt.Println(parsed.Registrant.Country)
	fmt.Println(parsed.CreatedDate)
	// Output:
	// Grace Hopper
	// US
	// 2012-04-05
}

// Line labels expose the two-level structure directly.
func ExampleParser_ParseBlocks() {
	corpus := whoisparse.GenerateCorpus(whoisparse.CorpusConfig{N: 300, Seed: 42})
	parser, _, err := whoisparse.Train(corpus, whoisparse.DefaultConfig())
	if err != nil {
		panic(err)
	}
	record := `Domain Name: x.com
Registrar: Example Registrar, Inc.
Creation Date: 2011-06-15
Registrant Name: Ada Lovelace
Registrant Email: ada@x.com
Name Server: ns1.x.com`
	_, blocks := parser.ParseBlocks(record)
	for _, b := range blocks {
		fmt.Println(b)
	}
	// Output:
	// domain
	// registrar
	// date
	// registrant
	// registrant
	// domain
}
